//! The eight apc-lint rules.
//!
//! Each rule takes scanned files (see [`crate::scan`]) and returns
//! [`Violation`]s. Scoping is purely path-pattern based and relative to
//! the linted root, so the same engine runs on the real workspace and on
//! the self-test fixtures under `crates/xtask/fixtures/`.

use crate::scan::{ManifestFile, SourceFile};
use crate::{RuleId, Violation};
use std::path::{Component, Path, PathBuf};

/// Crates whose `src/` trees count as *library code* for L1/L2.
///
/// `crates/bench` is excluded (it is all binaries and benches —
/// measurement tools, not bit-exactness-critical model code).
const LIBRARY_CRATE_DIRS: &[&str] = &[
    "crates/apps",
    "crates/baselines",
    "crates/bignum",
    "crates/core",
    "crates/net",
    "crates/serve",
    "crates/sim",
    "crates/trace",
    "crates/xtask",
];

pub(crate) fn is_library_source(rel: &str) -> bool {
    let in_lib_crate = LIBRARY_CRATE_DIRS
        .iter()
        .any(|c| rel.starts_with(&format!("{c}/src/")));
    // The workspace-root `src/` is the facade crate's library.
    let in_root_lib = rel.starts_with("src/");
    (in_lib_crate || in_root_lib) && !rel.contains("/bin/")
}

/// The work-stealing pool behind the vendored rayon facade. Not library
/// source (its unsafe job plumbing is exempt from L1/L2 by design), but
/// its gate/park atomics are in L12's scope: a relaxed access on the
/// latch or termination flag is precisely the bug class L12 exists for.
pub(crate) fn is_pool_source(rel: &str) -> bool {
    rel.starts_with("vendor/rayon/src/")
}

fn violation(rule: RuleId, rel: &str, line: usize, message: impl Into<String>) -> Violation {
    Violation {
        rule,
        file: PathBuf::from(rel),
        line,
        message: message.into(),
    }
}

/// L1: every library crate root carries `#![forbid(unsafe_code)]` and
/// `#![warn(missing_docs)]`.
///
/// Scope: `crates/*/src/lib.rs` and the workspace-root `src/lib.rs`.
pub fn l1_lib_root_attributes(file: &SourceFile) -> Vec<Violation> {
    let rel = &file.rel_path;
    let is_crate_root = rel == "src/lib.rs"
        || (rel.starts_with("crates/") && rel.ends_with("/src/lib.rs"));
    if !is_crate_root {
        return Vec::new();
    }
    let mut out = Vec::new();
    for needle in ["#![forbid(unsafe_code)]", "#![warn(missing_docs)]"] {
        let found = file.code_lines.iter().any(|l| l.contains(needle));
        if !found && !file.allowed(RuleId::L1, 1) {
            out.push(violation(
                RuleId::L1,
                rel,
                1,
                format!("library crate root is missing `{needle}`"),
            ));
        }
    }
    out
}

/// L2: no `.unwrap()`, `.expect(..)`, or `panic!` in non-test library
/// code. Tests (`#[cfg(test)]` modules, `tests/`, `benches/`,
/// `examples/`), doc comments and strings are exempt; justified escapes
/// use `// apc-lint: allow(L2) -- <reason>`.
pub fn l2_no_panic_paths(file: &SourceFile) -> Vec<Violation> {
    if !is_library_source(&file.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if file.test_lines[idx] {
            continue;
        }
        for (needle, label) in [
            (".unwrap()", "`.unwrap()`"),
            (".expect(", "`.expect(..)`"),
            ("panic!", "`panic!`"),
        ] {
            if contains_token(code, needle) && !file.allowed(RuleId::L2, line_no) {
                out.push(violation(
                    RuleId::L2,
                    &file.rel_path,
                    line_no,
                    format!(
                        "{label} in library path — return a Result, use the Limb/\
                         invariant helpers, or add `// apc-lint: allow(L2) -- <reason>`"
                    ),
                ));
            }
        }
    }
    out
}

/// Matches `needle` only when not embedded in a longer identifier (so
/// `should_panic` or `unwrap_or` never match `panic!` / `.unwrap()`).
fn contains_token(code: &str, needle: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(needle) {
        let at = start + pos;
        let before_ok = at == 0
            || !code[..at]
                .chars()
                .next_back()
                .is_some_and(|c| c.is_alphanumeric() || c == '_');
        let after = code[at + needle.len()..].chars().next();
        let after_ok = !after.is_some_and(|c| c.is_alphanumeric() || c == '_');
        if before_ok && after_ok {
            return true;
        }
        start = at + needle.len();
    }
    false
}

/// Integer target types an `as` cast may silently truncate into (or, for
/// `usize`/`isize`, whose width is platform-dependent).
const NARROW_TARGETS: &[&str] = &["u8", "u16", "u32", "i8", "i16", "i32", "usize", "isize"];

/// L3: no bare `as` casts to narrowing integer types in the arithmetic
/// kernels (`crates/bignum/src/nat/**`, `crates/core/src/**`). Use
/// `try_from` or the `limb` helpers so truncation is explicit.
pub fn l3_no_narrowing_casts(file: &SourceFile) -> Vec<Violation> {
    let rel = &file.rel_path;
    let in_scope =
        rel.starts_with("crates/bignum/src/nat/") || rel.starts_with("crates/core/src/");
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if file.test_lines[idx] {
            continue;
        }
        for target in NARROW_TARGETS {
            if cast_to(code, target) && !file.allowed(RuleId::L3, line_no) {
                out.push(violation(
                    RuleId::L3,
                    rel,
                    line_no,
                    format!(
                        "bare `as {target}` narrowing cast in a kernel path — use \
                         `{target}::try_from(..)` or a `limb` helper so truncation \
                         is explicit (Eq. 1 bit-exactness)"
                    ),
                ));
                break;
            }
        }
    }
    out
}

/// Detects `as <target>` with token boundaries on both sides.
fn cast_to(code: &str, target: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(" as ") {
        let at = start + pos;
        let tail = code[at + 4..].trim_start();
        if tail.starts_with(target) {
            let after = tail[target.len()..].chars().next();
            if !after.is_some_and(|c| c.is_alphanumeric() || c == '_') {
                return true;
            }
        }
        start = at + 4;
    }
    false
}

/// Item keywords whose `pub` declarations L4 inspects.
const PUB_ITEM_KEYWORDS: &[&str] = &["fn", "struct", "enum", "trait", "type", "const", "static"];

/// Anchor substrings accepted as paper citations.
const ANCHORS: &[&str] = &["§", "Eq.", "Fig."];

/// L4: every public item in `crates/core/src/**` must carry a doc
/// comment citing a paper anchor (`§`, `Eq.`, or `Fig.`), and every
/// module header (`//!` block) must cite one too. The model crate *is*
/// the paper reproduction; an item that cannot name the section,
/// equation, or figure it models is either misplaced or unspecified.
pub fn l4_paper_anchors(file: &SourceFile) -> Vec<Violation> {
    let rel = &file.rel_path;
    if !rel.starts_with("crates/core/src/") {
        return Vec::new();
    }
    let mut out = Vec::new();

    // Module header: the leading //! block.
    let header: String = file
        .raw_lines
        .iter()
        .take_while(|l| {
            let t = l.trim_start();
            t.starts_with("//!") || t.is_empty() || t.starts_with("#![")
        })
        .filter(|l| l.trim_start().starts_with("//!"))
        .cloned()
        .collect::<Vec<_>>()
        .join("\n");
    if !has_anchor(&header) && !file.allowed(RuleId::L4, 1) {
        out.push(violation(
            RuleId::L4,
            rel,
            1,
            "module header (`//!` block) must cite a paper anchor (§, Eq., or Fig.)",
        ));
    }

    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if file.test_lines[idx] {
            continue;
        }
        let trimmed = code.trim_start();
        let Some(after_pub) = trimmed.strip_prefix("pub ") else {
            continue;
        };
        let is_item = PUB_ITEM_KEYWORDS
            .iter()
            .any(|kw| after_pub.starts_with(kw) && {
                let after = after_pub[kw.len()..].chars().next();
                !after.is_some_and(|c| c.is_alphanumeric() || c == '_')
            });
        if !is_item {
            continue;
        }
        if file.allowed(RuleId::L4, line_no) {
            continue;
        }
        let doc = doc_block_above(file, idx);
        if doc.is_empty() {
            out.push(violation(
                RuleId::L4,
                rel,
                line_no,
                "public item has no doc comment (and must cite a paper anchor)",
            ));
        } else if !has_anchor(&doc) {
            out.push(violation(
                RuleId::L4,
                rel,
                line_no,
                "public item's doc comment must cite a paper anchor (§, Eq., or Fig.)",
            ));
        }
    }
    out
}

fn has_anchor(text: &str) -> bool {
    ANCHORS.iter().any(|a| text.contains(a))
}

/// Collects the `///` block directly above line `idx` (0-based),
/// skipping attributes and plain comments in between.
fn doc_block_above(file: &SourceFile, idx: usize) -> String {
    let mut docs: Vec<&str> = Vec::new();
    let mut i = idx;
    while i > 0 {
        i -= 1;
        let raw = file.raw_lines[i].trim_start();
        if raw.starts_with("///") {
            docs.push(raw);
        } else if raw.starts_with("#[") || raw.starts_with("//") || raw.ends_with(']') {
            // Attributes (possibly multi-line, ending in `]`) and plain
            // comments may sit between docs and item.
            continue;
        } else {
            break;
        }
    }
    docs.reverse();
    docs.join("\n")
}

/// L6: no `RefCell<..>` / `Cell<..>` fields in `pub` structs on library
/// paths. Interior mutability in an exported handle silently makes it
/// `!Sync`, so one instance can never serve concurrent callers — the
/// exact trap the `Device` stats block fell into before it moved to
/// atomics. Use atomics (or a lock) for shared accounting, keep the cell
/// in a private type, or justify the single-threaded design with
/// `// apc-lint: allow(L6) -- <reason>`.
pub fn l6_no_interior_mutability_in_pub_structs(file: &SourceFile) -> Vec<Violation> {
    if !is_library_source(&file.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    let mut depth: i32 = 0;
    // A `pub struct` has been declared and its `{` body not yet opened.
    let mut awaiting_body = false;
    // Brace depth of the innermost open `pub struct` body.
    let mut body_floor: Option<i32> = None;
    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let in_test = file.test_lines[idx];
        let trimmed = code.trim_start();
        let declares_pub_struct = !in_test
            && (trimmed.starts_with("pub struct ")
                || (trimmed.starts_with("pub(") && contains_token(code, "struct")));
        if declares_pub_struct && body_floor.is_none() {
            awaiting_body = true;
        }
        for ch in code.chars() {
            match ch {
                '{' => {
                    depth += 1;
                    if awaiting_body {
                        awaiting_body = false;
                        body_floor = Some(depth);
                    }
                }
                '}' => {
                    depth -= 1;
                    if body_floor.is_some_and(|floor| depth < floor) {
                        body_floor = None;
                    }
                }
                // Unit / tuple struct: declaration ends without a body
                // (tuple fields are caught on the declaration line itself).
                ';' if awaiting_body => awaiting_body = false,
                _ => {}
            }
        }
        if (body_floor.is_some() || declares_pub_struct) && !in_test {
            for needle in ["RefCell", "Cell"] {
                if contains_token(code, needle) && !file.allowed(RuleId::L6, line_no) {
                    out.push(violation(
                        RuleId::L6,
                        &file.rel_path,
                        line_no,
                        format!(
                            "`{needle}<..>` field in a pub struct makes the exported \
                             handle !Sync — use atomics or a lock (see \
                             SharedDeviceStats), or add `// apc-lint: allow(L6) \
                             -- <reason>`"
                        ),
                    ));
                    break;
                }
            }
        }
    }
    out
}

/// L7: no `thread::sleep` on library paths in `crates/serve` or
/// `crates/net`. The serving layer is event-driven end to end:
/// submitters signal a condvar, the scheduler blocks on it, workers
/// block on the dispatch channel. The network layer is the same —
/// connection workers block on the accept channel or on a socket read
/// whose *timeout* is the drain poll. A sleep on any of these paths is
/// a latency floor and a busy-poll in disguise — the scheduler would
/// either oversleep a ready batch or spin the (single) CPU the workers
/// need. Tests may sleep; library code blocks on the event that
/// actually changes state, or justifies itself with
/// `// apc-lint: allow(L7) -- <reason>`.
pub fn l7_no_sleep_in_serve(file: &SourceFile) -> Vec<Violation> {
    let rel = &file.rel_path;
    let in_scope = (rel.starts_with("crates/serve/src/") || rel.starts_with("crates/net/src/"))
        && !rel.contains("/bin/");
    if !in_scope {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if file.test_lines[idx] {
            continue;
        }
        if contains_token(code, "thread::sleep") && !file.allowed(RuleId::L7, line_no) {
            out.push(violation(
                RuleId::L7,
                rel,
                line_no,
                "`thread::sleep` on a serving-layer library path — block on the \
                 condvar/channel that signals the state change instead, or add \
                 `// apc-lint: allow(L7) -- <reason>`",
            ));
        }
    }
    out
}

/// L8: no bare `.lock().unwrap()` / `.lock().expect(..)` on library
/// paths. A panicking tenant must never take the whole service down with
/// it: every tally/queue transition in this workspace is single-step, so
/// a poisoned mutex still guards consistent data and the right recovery
/// is `lock().unwrap_or_else(PoisonError::into_inner)` (see
/// `Session::lock_tallies`). Bare unwrap/expect on a lock turns one
/// tenant's panic into a cascade. L2 already flags the unwrap itself;
/// L8 exists so the *lock-specific* recovery idiom cannot be waived with
/// a generic L2 allow.
pub fn l8_no_bare_lock_unwrap(file: &SourceFile) -> Vec<Violation> {
    if !is_library_source(&file.rel_path) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for (idx, code) in file.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        if file.test_lines[idx] {
            continue;
        }
        if lock_then_panicky(code) && !file.allowed(RuleId::L8, line_no) {
            out.push(violation(
                RuleId::L8,
                &file.rel_path,
                line_no,
                "bare `.lock().unwrap()`/`.lock().expect(..)` propagates another \
                 thread's panic — recover with \
                 `.lock().unwrap_or_else(PoisonError::into_inner)` (single-step \
                 transitions keep the data consistent), or add \
                 `// apc-lint: allow(L8) -- <reason>`",
            ));
        }
    }
    out
}

/// Detects `.lock()` immediately followed (modulo whitespace) by
/// `.unwrap()` or `.expect(`. `.unwrap_or_else(..)` does not match.
fn lock_then_panicky(code: &str) -> bool {
    let mut start = 0usize;
    while let Some(pos) = code[start..].find(".lock()") {
        let at = start + pos + ".lock()".len();
        let tail = code[at..].trim_start();
        if tail.starts_with(".unwrap()") || tail.starts_with(".expect(") {
            return true;
        }
        start = at;
    }
    false
}

/// Keys every member crate must inherit from `[workspace.package]`.
const INHERITED_KEYS: &[&str] = &["version", "edition", "license"];

/// L5: Cargo.toml hygiene for member crates (`crates/*/Cargo.toml`):
/// metadata inherited from the workspace (`version.workspace = true`,
/// …), `[lints] workspace = true` so the `[workspace.lints]` table
/// applies, and no `path` dependency (any manifest, root included)
/// resolving outside the workspace root.
pub fn l5_manifest_hygiene(manifest: &ManifestFile, root: &Path) -> Vec<Violation> {
    let rel = &manifest.rel_path;
    let is_member = rel.starts_with("crates/") && rel.ends_with("/Cargo.toml");
    let is_root = rel == "Cargo.toml";
    if !is_member && !is_root {
        return Vec::new();
    }
    let mut out = Vec::new();

    if is_member {
        for key in INHERITED_KEYS {
            let dotted = format!("{key}.workspace = true");
            let braced = format!("{key} = {{ workspace = true }}");
            let found = manifest
                .code_lines
                .iter()
                .any(|l| l.contains(&dotted) || l.contains(&braced));
            if !found && !manifest.allowed(RuleId::L5, 1) {
                out.push(violation(
                    RuleId::L5,
                    rel,
                    1,
                    format!("`{key}` must be inherited from [workspace.package] (`{dotted}`)"),
                ));
            }
        }
        let lints_inherited = manifest.code_lines.windows(2).any(|w| {
            w[0].trim() == "[lints]" && w[1].trim() == "workspace = true"
        }) || manifest
            .code_lines
            .iter()
            .any(|l| l.contains("lints.workspace = true"));
        if !lints_inherited && !manifest.allowed(RuleId::L5, 1) {
            out.push(violation(
                RuleId::L5,
                rel,
                1,
                "crate must inherit workspace lints (`[lints]\\nworkspace = true`)",
            ));
        }
    }

    // Path-dependency containment, checked in every manifest in scope.
    let manifest_dir = Path::new(rel)
        .parent()
        .map(Path::to_path_buf)
        .unwrap_or_default();
    for (idx, code) in manifest.code_lines.iter().enumerate() {
        let line_no = idx + 1;
        let mut search = 0usize;
        while let Some(pos) = code[search..].find("path = \"") {
            let at = search + pos + "path = \"".len();
            let Some(end) = code[at..].find('"') else {
                break;
            };
            let dep_path = &code[at..at + end];
            search = at + end;
            let joined = manifest_dir.join(dep_path);
            if !stays_inside_root(&joined) && !manifest.allowed(RuleId::L5, line_no) {
                out.push(violation(
                    RuleId::L5,
                    rel,
                    line_no,
                    format!("path dependency `{dep_path}` escapes the workspace root"),
                ));
            }
            let _ = root; // the check is lexical; root kept for future canonicalization
        }
    }
    out
}

/// Lexically resolves `..` components; the path must never climb above
/// the workspace root.
fn stays_inside_root(rel_to_root: &Path) -> bool {
    let mut depth: i64 = 0;
    for comp in rel_to_root.components() {
        match comp {
            Component::ParentDir => {
                depth -= 1;
                if depth < 0 {
                    return false;
                }
            }
            Component::Normal(_) => depth += 1,
            Component::CurDir => {}
            Component::RootDir | Component::Prefix(_) => return false,
        }
    }
    true
}
