//! The flow-aware rules L9–L12, built on the item map
//! ([`crate::items`]) and the per-function summaries
//! ([`crate::summary`]).
//!
//! These are the analyses a per-line scanner cannot express: lock-order
//! cycles span files, time-domain mixing spans expressions, and limb
//! arithmetic discipline needs the variable's declared type — all of
//! which need tokens, item spans, and call resolution.

use crate::items::Workspace;
use crate::lexer::{Token, TokenKind};
use crate::rules::{is_library_source, is_pool_source};
use crate::scan::SourceFile;
use crate::summary::FnSummary;
use crate::{RuleId, Violation};
use std::collections::{BTreeMap, BTreeSet};
use std::path::PathBuf;

fn violation(rule: RuleId, rel: &str, line: usize, message: String) -> Violation {
    Violation {
        rule,
        file: PathBuf::from(rel),
        line,
        message,
    }
}

// ---------------------------------------------------------------------
// L9 — lock-order cycle detection
// ---------------------------------------------------------------------

/// Resolves a call site to candidate function indices by name, within
/// the caller's crate plus any crate the file imports (or the crate a
/// path-qualified call names explicitly).
fn resolve_call(
    ws: &Workspace,
    file_idx: usize,
    callee: &str,
    path_root: &str,
) -> Vec<usize> {
    let own = &ws.crate_of_file[file_idx];
    let mut dirs: Vec<&str> = Vec::new();
    if path_root.is_empty() || path_root == "self" || path_root == "crate" {
        dirs.push(own);
        if path_root.is_empty() {
            for d in &ws.imports[file_idx] {
                dirs.push(d);
            }
        }
    } else if let Some(dir) = ws.crate_ident_to_dir.get(path_root) {
        dirs.push(dir);
    } else {
        // A type-qualified call (`Nat::from_limbs`) — same crate.
        dirs.push(own);
    }
    let mut out = Vec::new();
    for dir in dirs {
        if let Some(v) = ws.fn_by_name.get(&(dir.to_string(), callee.to_string())) {
            out.extend_from_slice(v);
        }
    }
    out
}

/// L9: build the "lock A held while acquiring lock B" graph across the
/// workspace — from direct acquisitions and from calls into functions
/// that (transitively) acquire — and fail on every edge that lies on a
/// cycle. A cycle means two threads taking the locks in opposite orders
/// can deadlock; the serve scheduler and the planned lock-free admission
/// rework must stay provably order-consistent.
///
/// The `vendor/rayon` pool is out of scope: L9 identifies locks
/// lexically, and the pool routes every mutex (per-worker deques,
/// injector, sleep gate) through one generic `lock(m)` helper, so each
/// steal-scan acquisition would alias to the same name and read as a
/// re-entrant cycle. The pool's deadlock-freedom rests on workers
/// *stealing* while they wait instead of blocking (DESIGN.md §Host
/// parallelism), which is not a lock-order property.
pub fn l9_lock_order(
    sources: &[SourceFile],
    ws: &Workspace,
    sums: &[FnSummary],
) -> Vec<Violation> {
    // Transitive "may acquire" sets per function (fixpoint).
    let mut may_acquire: BTreeMap<usize, BTreeSet<String>> = BTreeMap::new();
    for s in sums {
        let set: BTreeSet<String> = s.acquisitions.iter().map(|a| a.lock.clone()).collect();
        may_acquire.insert(s.fn_idx, set);
    }
    loop {
        let mut changed = false;
        for s in sums {
            let file_idx = ws.fns[s.fn_idx].file;
            let mut add: BTreeSet<String> = BTreeSet::new();
            for c in &s.calls {
                for callee in resolve_call(ws, file_idx, &c.callee, &c.path_root) {
                    if let Some(set) = may_acquire.get(&callee) {
                        add.extend(set.iter().cloned());
                    }
                }
            }
            if let Some(set) = may_acquire.get_mut(&s.fn_idx) {
                let before = set.len();
                set.extend(add);
                changed |= set.len() != before;
            }
        }
        if !changed {
            break;
        }
    }

    // Edges with their witness sites.
    type Site = (usize, usize, String); // (file, line, description)
    let mut edges: BTreeMap<(String, String), Vec<Site>> = BTreeMap::new();
    for s in sums {
        let file_idx = ws.fns[s.fn_idx].file;
        if is_pool_source(&sources[file_idx].rel_path) {
            continue;
        }
        let fn_name = &ws.fns[s.fn_idx].name;
        for a in &s.acquisitions {
            for h in &a.held {
                edges
                    .entry((h.clone(), a.lock.clone()))
                    .or_default()
                    .push((
                        file_idx,
                        a.line,
                        format!("`{fn_name}` acquires `{}` while holding `{h}`", a.lock),
                    ));
            }
        }
        for c in &s.calls {
            if c.held.is_empty() {
                continue;
            }
            for callee in resolve_call(ws, file_idx, &c.callee, &c.path_root) {
                let Some(set) = may_acquire.get(&callee) else {
                    continue;
                };
                for l in set {
                    for h in &c.held {
                        // Call-propagated self-edges are dropped: name
                        // resolution is approximate, and `x.push(..)`
                        // matching a workspace `fn push` must not fake a
                        // re-entrant acquisition.
                        if l == h {
                            continue;
                        }
                        edges.entry((h.clone(), l.clone())).or_default().push((
                            file_idx,
                            c.line,
                            format!(
                                "`{fn_name}` calls `{}` (which may acquire `{l}`) \
                                 while holding `{h}`",
                                c.callee
                            ),
                        ));
                    }
                }
            }
        }
    }

    // An edge u→v is on a cycle iff v can reach u.
    let adj: BTreeMap<&String, BTreeSet<&String>> = {
        let mut m: BTreeMap<&String, BTreeSet<&String>> = BTreeMap::new();
        for (u, v) in edges.keys().map(|(u, v)| (u, v)) {
            m.entry(u).or_default().insert(v);
        }
        m
    };
    let reaches = |from: &String, to: &String| -> bool {
        let mut seen: BTreeSet<&String> = BTreeSet::new();
        let mut stack: Vec<&String> = vec![from];
        while let Some(n) = stack.pop() {
            if n == to {
                return true;
            }
            if !seen.insert(n) {
                continue;
            }
            if let Some(next) = adj.get(n) {
                stack.extend(next.iter());
            }
        }
        false
    };

    let mut out = Vec::new();
    let mut reported: BTreeSet<(usize, usize, String, String)> = BTreeSet::new();
    for ((u, v), sites) in &edges {
        let cyclic = if u == v { true } else { reaches(v, u) };
        if !cyclic {
            continue;
        }
        for (file_idx, line, desc) in sites {
            let src = &sources[*file_idx];
            if src.allowed(RuleId::L9, *line) {
                continue;
            }
            if !reported.insert((*file_idx, *line, u.clone(), v.clone())) {
                continue;
            }
            out.push(violation(
                RuleId::L9,
                &src.rel_path,
                *line,
                format!(
                    "lock-order cycle: {desc}, but a `{v}` → `{u}` acquisition \
                     path also exists — pick one global order or add \
                     `// apc-lint: allow(L9) -- <reason>`"
                ),
            ));
        }
    }
    out
}

// ---------------------------------------------------------------------
// L10 — time-domain confinement
// ---------------------------------------------------------------------

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Domain {
    Ns,
    Cycle,
}

impl Domain {
    fn opposite(self) -> Domain {
        match self {
            Domain::Ns => Domain::Cycle,
            Domain::Cycle => Domain::Ns,
        }
    }

    fn label(self) -> &'static str {
        match self {
            Domain::Ns => "ns",
            Domain::Cycle => "cycle",
        }
    }
}

/// Classifies an identifier into a time domain, if any. Field names
/// carry the unit by contract (apc-trace module docs): `_ns` suffixes
/// and `Instant`-derived helpers are wall-clock, `_cycles` suffixes and
/// `cycles` itself are the device model's cycle domain.
fn domain_of(ident: &str) -> Option<Domain> {
    if ident == "ns"
        || ident.ends_with("_ns")
        || ident == "elapsed"
        || ident == "Instant"
        || ident == "as_nanos"
        || ident == "subsec_nanos"
    {
        return Some(Domain::Ns);
    }
    if ident == "cycles" || ident.ends_with("_cycles") {
        return Some(Domain::Cycle);
    }
    None
}

/// Scans `toks[start..]` (starting right after an opening delimiter)
/// until the matching close, returning each ident of domain `d` found at
/// any depth.
fn domain_idents_in_args(toks: &[Token], open_idx: usize, d: Domain) -> Vec<(usize, String)> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut i = open_idx;
    while i < toks.len() {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" => {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            }
            _ => {
                if toks[i].kind == TokenKind::Ident && domain_of(&toks[i].text) == Some(d) {
                    out.push((toks[i].line, toks[i].text.clone()));
                }
            }
        }
        i += 1;
    }
    out
}

/// L10: no expression may mix the cycle domain and the Instant-ns
/// domain. Checked as flows, not co-presence — a function may *touch*
/// both domains (e.g. `ServeMetrics::record_completion` records five ns
/// histograms and one cycle histogram) as long as no single record call,
/// binding, or initializer crosses them.
pub fn l10_time_domains(sources: &[SourceFile], ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.fns {
        let src = &sources[f.file];
        if f.is_test || !is_library_source(&src.rel_path) {
            continue;
        }
        let toks = &src.tokens;
        let mut i = f.body_start;
        while i < f.body_end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokenKind::Ident {
                i += 1;
                continue;
            }
            // (a) `<recv>.record(args)` — args must match recv's domain.
            if t.text == "record"
                && i >= 2
                && toks[i - 1].is_punct(".")
                && toks[i - 2].kind == TokenKind::Ident
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                if let Some(d) = domain_of(&toks[i - 2].text) {
                    for (line, ident) in domain_idents_in_args(toks, i + 1, d.opposite()) {
                        if src.is_test_line(line) || src.allowed(RuleId::L10, line) {
                            continue;
                        }
                        out.push(violation(
                            RuleId::L10,
                            &src.rel_path,
                            line,
                            format!(
                                "{}-domain value `{ident}` recorded into {}-domain \
                                 histogram `{}` — the two time domains are never \
                                 mixed (apc-trace contract)",
                                d.opposite().label(),
                                d.label(),
                                toks[i - 2].text
                            ),
                        ));
                    }
                }
            }
            // (b) `Span::enter(hist)` — spans record Instant-ns; the
            // histogram argument must not be cycle-domain.
            if t.text == "enter"
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("Span")
                && toks.get(i + 1).is_some_and(|n| n.is_punct("("))
            {
                for (line, ident) in domain_idents_in_args(toks, i + 1, Domain::Cycle) {
                    if src.is_test_line(line) || src.allowed(RuleId::L10, line) {
                        continue;
                    }
                    out.push(violation(
                        RuleId::L10,
                        &src.rel_path,
                        line,
                        format!(
                            "`Span::enter` records Instant-ns but is given \
                             cycle-domain histogram `{ident}` — spans never \
                             measure the device clock (apc-trace contract)"
                        ),
                    ));
                }
            }
            // (c) domain-named binding/field: `<name_ns> = expr` /
            // `<name_ns>: expr` — expr must not carry the other domain.
            if let Some(d) = domain_of(&t.text) {
                let next = toks.get(i + 1);
                let is_sink = next.is_some_and(|n| {
                    n.is_punct("=") || n.is_punct(":") || n.is_punct("+=") || n.is_punct("-=")
                });
                if is_sink {
                    let end = rhs_end(toks, i + 2, f.body_end);
                    for j in i + 2..end {
                        let tj = &toks[j];
                        if tj.kind == TokenKind::Ident
                            && domain_of(&tj.text) == Some(d.opposite())
                        {
                            let line = tj.line;
                            if src.is_test_line(line) || src.allowed(RuleId::L10, line) {
                                continue;
                            }
                            out.push(violation(
                                RuleId::L10,
                                &src.rel_path,
                                line,
                                format!(
                                    "{}-domain name `{}` is assigned from \
                                     {}-domain value `{}` — the two time domains \
                                     are never mixed (apc-trace contract)",
                                    d.label(),
                                    t.text,
                                    d.opposite().label(),
                                    tj.text
                                ),
                            ));
                        }
                    }
                    i = end;
                    continue;
                }
            }
            i += 1;
        }
    }
    out
}

/// End of the right-hand side starting at `start`: the first `;`, `,`,
/// or closing delimiter at relative depth 0 (capped at `limit`).
fn rhs_end(toks: &[Token], start: usize, limit: usize) -> usize {
    let mut depth = 0i32;
    let mut i = start;
    while i < limit.min(toks.len()) {
        match toks[i].text.as_str() {
            "(" | "[" | "{" => depth += 1,
            ")" | "]" | "}" if depth == 0 => return i,
            ")" | "]" | "}" => depth -= 1,
            ";" | "," if depth == 0 => return i,
            _ => {}
        }
        i += 1;
    }
    i
}

// ---------------------------------------------------------------------
// L11 — kernel arithmetic discipline
// ---------------------------------------------------------------------

/// Helpers from `limb.rs` whose tuple results are limb-typed.
const LIMB_TUPLE_HELPERS: &[&str] =
    &["adc", "sbb", "mul_wide", "mul_add_carry", "div2by1", "shl_step"];

/// Operators L11 bans on limb-typed left operands (`>>` is deliberately
/// excluded: right shift cannot overflow a limb's value).
const BANNED_OPS: &[&str] = &["+", "-", "*", "<<", "+=", "-=", "*=", "<<="];

/// Per-function limb typing: which idents hold `Limb` values and which
/// hold limb slices.
#[derive(Debug, Default)]
struct LimbVars {
    scalars: BTreeSet<String>,
    slices: BTreeSet<String>,
}

fn limb_vars(toks: &[Token], f: &crate::items::FnItem) -> LimbVars {
    let mut vars = LimbVars::default();
    // Parameters: `name: Limb` / `name: &[Limb]` / `name: &mut Vec<Limb>`.
    let sig = &toks[f.sig_start..f.body_start];
    let mut i = 0usize;
    while i < sig.len() {
        if sig[i].is_punct(":") && i >= 1 && sig[i - 1].kind == TokenKind::Ident {
            let name = sig[i - 1].text.clone();
            let mut j = i + 1;
            let mut depth = 0i32;
            let mut saw_limb = false;
            let mut saw_container = false;
            while j < sig.len() {
                match sig[j].text.as_str() {
                    "(" | "[" | "<" => {
                        depth += 1;
                        if sig[j].text == "[" {
                            saw_container = true;
                        }
                    }
                    ")" | "]" | ">" => depth -= 1,
                    "," if depth <= 0 => break,
                    "Limb" => saw_limb = true,
                    "Vec" | "VecDeque" => saw_container = true,
                    _ => {}
                }
                if depth < 0 {
                    break;
                }
                j += 1;
            }
            if saw_limb {
                if saw_container {
                    vars.slices.insert(name);
                } else {
                    vars.scalars.insert(name);
                }
            }
            i = j;
            continue;
        }
        i += 1;
    }
    // Body-local typing evidence.
    let body = &toks[f.body_start..f.body_end.min(toks.len())];
    let mut k = 0usize;
    while k < body.len() {
        let t = &body[k];
        // `let [mut] name: Limb` / `let [mut] name: Vec<Limb>`.
        if t.is_ident("let") {
            let mut j = k + 1;
            while body.get(j).is_some_and(|t| t.is_ident("mut")) {
                j += 1;
            }
            if body.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                && body.get(j + 1).is_some_and(|t| t.is_punct(":"))
            {
                let name = body[j].text.clone();
                let mut m = j + 2;
                let mut saw_limb = false;
                let mut saw_container = false;
                while m < body.len() && !body[m].is_punct("=") && !body[m].is_punct(";") {
                    match body[m].text.as_str() {
                        "Limb" => saw_limb = true,
                        "Vec" | "[" => saw_container = true,
                        _ => {}
                    }
                    m += 1;
                }
                if saw_limb {
                    if saw_container {
                        vars.slices.insert(name);
                    } else {
                        vars.scalars.insert(name);
                    }
                }
            }
            // `let [mut] name = [&]base[..]…;` — a value loaded out of a
            // known limb slice is limb-typed too (the Sliced64 word-load
            // idiom). Anchored at the RHS head so slice mentions buried in
            // call arguments don't leak typing onto unrelated bindings; a
            // ranged index yields a limb *slice*, a plain index a scalar.
            if body.get(j).is_some_and(|t| t.kind == TokenKind::Ident)
                && body.get(j + 1).is_some_and(|t| t.is_punct("="))
            {
                let name = body[j].text.clone();
                let end = rhs_end(body, j + 2, body.len());
                let mut m = j + 2;
                if body.get(m).is_some_and(|t| t.is_punct("&")) {
                    m += 1;
                }
                if m + 1 < end
                    && body[m].kind == TokenKind::Ident
                    && body[m + 1].is_punct("[")
                    && vars.slices.contains(&body[m].text)
                {
                    let idx_end = rhs_end(body, m + 2, end);
                    let ranged = (m + 2..idx_end)
                        .any(|r| body[r].is_punct("..") || body[r].is_punct("..="));
                    if ranged {
                        vars.slices.insert(name);
                    } else {
                        vars.scalars.insert(name);
                    }
                }
            }
            // `let (a, b) = <limb helper>(..)`.
            if body.get(j).is_some_and(|t| t.is_punct("(")) {
                let mut names = Vec::new();
                let mut m = j + 1;
                while m < body.len() && !body[m].is_punct(")") {
                    if body[m].kind == TokenKind::Ident && !body[m].is_ident("mut") {
                        names.push(body[m].text.clone());
                    }
                    m += 1;
                }
                let is_helper = body.get(m + 1).is_some_and(|t| t.is_punct("="))
                    && body
                        .get(m + 2)
                        .is_some_and(|t| LIMB_TUPLE_HELPERS.contains(&t.text.as_str()));
                if is_helper {
                    vars.scalars.extend(names);
                }
            }
        }
        // `for [&]x in <limb slice>` / `for [&]x in <limb slice>.iter()`.
        if t.is_ident("for") {
            let mut j = k + 1;
            if body.get(j).is_some_and(|t| t.is_punct("&")) {
                j += 1;
            }
            let name = body
                .get(j)
                .filter(|t| t.kind == TokenKind::Ident)
                .map(|t| t.text.clone());
            if let Some(name) = name {
                if body.get(j + 1).is_some_and(|t| t.is_ident("in")) {
                    let base = body.get(j + 2).filter(|t| t.kind == TokenKind::Ident);
                    if base.is_some_and(|b| vars.slices.contains(&b.text)) {
                        vars.scalars.insert(name);
                    }
                }
            }
            // `for (i, [&]x) in <limb slice>.iter().enumerate()` — the
            // second binding walks the slice's elements.
            if body.get(j).is_some_and(|t| t.is_punct("(")) {
                let mut names = Vec::new();
                let mut m = j + 1;
                while m < body.len() && !body[m].is_punct(")") {
                    if body[m].kind == TokenKind::Ident && !body[m].is_ident("mut") {
                        names.push(body[m].text.clone());
                    }
                    m += 1;
                }
                let elem = names.last().cloned();
                let base = body
                    .get(m + 2)
                    .filter(|_| body.get(m + 1).is_some_and(|t| t.is_ident("in")))
                    .filter(|t| t.kind == TokenKind::Ident);
                let enumerated = (m + 3..body.len().min(m + 12))
                    .take_while(|&r| !body[r].is_punct("{"))
                    .any(|r| body[r].is_ident("enumerate"));
                if let (Some(elem), Some(base)) = (elem, base) {
                    if enumerated && vars.slices.contains(&base.text) {
                        vars.scalars.insert(elem);
                    }
                }
            }
        }
        k += 1;
    }
    vars
}

/// L11: on the Eq. 1 hot paths, bare `+`/`-`/`*`/`<<` on a limb-typed
/// left operand is a silent-wrap hole in release mode. Route the step
/// through `limb.rs` helpers (`adc`, `mul_add_carry`, `shl_step`, …) or
/// use an explicit `wrapping_`/`checked_`/`carrying` form.
pub fn l11_limb_arithmetic(sources: &[SourceFile], ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.fns {
        let src = &sources[f.file];
        let rel = &src.rel_path;
        let in_scope = rel.starts_with("crates/bignum/src/nat/")
            || rel.starts_with("crates/core/src/");
        if !in_scope || f.is_test || f.body_start >= f.body_end {
            continue;
        }
        let toks = &src.tokens;
        let vars = limb_vars(toks, f);
        if vars.scalars.is_empty() && vars.slices.is_empty() {
            continue;
        }
        for i in f.body_start..f.body_end.min(toks.len()) {
            let t = &toks[i];
            if t.kind != TokenKind::Punct || !BANNED_OPS.contains(&t.text.as_str()) {
                continue;
            }
            let Some(left) = left_operand(toks, i, f.body_start) else {
                continue;
            };
            let limb_left = match &left {
                Operand::Ident(name) => vars.scalars.contains(name),
                Operand::Index(base) => vars.slices.contains(base),
            };
            if !limb_left {
                continue;
            }
            let line = t.line;
            if src.is_test_line(line) || src.allowed(RuleId::L11, line) {
                continue;
            }
            let name = match &left {
                Operand::Ident(n) => n.clone(),
                Operand::Index(b) => format!("{b}[..]"),
            };
            out.push(violation(
                RuleId::L11,
                rel,
                line,
                format!(
                    "bare `{}` on limb-typed `{name}` can wrap silently in release \
                     mode — use a `limb.rs` helper (adc/sbb/mul_wide/shl_step) or \
                     an explicit wrapping_/checked_ call (Eq. 1 bit-exactness)",
                    t.text
                ),
            ));
        }
    }
    out
}

#[derive(Debug)]
enum Operand {
    Ident(String),
    Index(String),
}

/// The token-level left operand of the operator at `op_idx`: a plain
/// ident, or `base[..]` indexing (resolved to `base`). Returns `None`
/// for anything else (parenthesized subexpressions, literals, unary
/// uses) — the rule under-approximates rather than guessing.
fn left_operand(toks: &[Token], op_idx: usize, floor: usize) -> Option<Operand> {
    if op_idx == 0 || op_idx <= floor {
        return None;
    }
    let prev = &toks[op_idx - 1];
    if prev.kind == TokenKind::Ident {
        // `&name <<` is a reference — still the same value; accept.
        return Some(Operand::Ident(prev.text.clone()));
    }
    if prev.is_punct("]") {
        // Walk back to the matching `[` and take the ident before it.
        let mut depth = 0i32;
        let mut i = op_idx - 1;
        while i > floor {
            match toks[i].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        if i >= 1 && toks[i - 1].kind == TokenKind::Ident {
                            return Some(Operand::Index(toks[i - 1].text.clone()));
                        }
                        return None;
                    }
                }
                _ => {}
            }
            i -= 1;
        }
    }
    None
}

// ---------------------------------------------------------------------
// L12 — atomic-ordering audit
// ---------------------------------------------------------------------

/// Atomic methods whose ordering argument L12 inspects.
const ATOMIC_METHODS: &[&str] = &[
    "load",
    "store",
    "swap",
    "fetch_and",
    "fetch_or",
    "fetch_xor",
    "fetch_nand",
    "fetch_add",
    "fetch_sub",
    "fetch_max",
    "fetch_min",
    "fetch_update",
    "compare_exchange",
    "compare_exchange_weak",
];

/// L12: `Ordering::Relaxed` is for statistic counters only. On a
/// gate/flag `AtomicBool` (trace switch, shutdown flag) a relaxed access
/// synchronizes nothing: the reader may act on the flag yet miss the
/// writes the flag was supposed to publish. Flag atomics use
/// Acquire/Release (or stronger), or carry a justified allow.
///
/// Scope is library source *plus* the `vendor/rayon` pool: the pool's
/// latch and termination flags are the load-bearing gate atomics of the
/// whole parallel feature (a relaxed latch probe could report a join
/// complete before its result write is visible), so they get the same
/// audit as workspace flags.
pub fn l12_atomic_orderings(sources: &[SourceFile], ws: &Workspace) -> Vec<Violation> {
    let mut out = Vec::new();
    for f in &ws.fns {
        let src = &sources[f.file];
        let in_scope = is_library_source(&src.rel_path) || is_pool_source(&src.rel_path);
        if f.is_test || !in_scope {
            continue;
        }
        let toks = &src.tokens;
        for i in f.body_start..f.body_end.min(toks.len()) {
            let relaxed = toks[i].is_ident("Relaxed")
                && i >= 2
                && toks[i - 1].is_punct("::")
                && toks[i - 2].is_ident("Ordering");
            if !relaxed {
                continue;
            }
            let Some((method, receiver)) = enclosing_atomic_call(toks, i, f.body_start) else {
                continue;
            };
            if !ws.atomic_bools.contains(&receiver) {
                continue;
            }
            let line = toks[i].line;
            if src.is_test_line(line) || src.allowed(RuleId::L12, line) {
                continue;
            }
            out.push(violation(
                RuleId::L12,
                &src.rel_path,
                line,
                format!(
                    "`Ordering::Relaxed` on gate/flag atomic `{receiver}.{method}` — \
                     a relaxed access publishes/observes nothing; use \
                     Acquire/Release (or stronger), or justify with \
                     `// apc-lint: allow(L12) -- <reason>` if it is a pure \
                     statistic"
                ),
            ));
        }
    }
    out
}

/// Walks back from a `Relaxed` token to the call it is an argument of;
/// returns `(method, receiver)` when that call is `<recv>.<atomic
/// method>(..)`.
fn enclosing_atomic_call(toks: &[Token], relaxed_idx: usize, floor: usize) -> Option<(String, String)> {
    let mut depth = 0i32;
    let mut i = relaxed_idx;
    while i > floor {
        i -= 1;
        match toks[i].text.as_str() {
            ")" => depth += 1,
            "(" => {
                if depth == 0 {
                    // Opening paren of the enclosing call.
                    let method = toks.get(i.checked_sub(1)?)?;
                    if method.kind != TokenKind::Ident
                        || !ATOMIC_METHODS.contains(&method.text.as_str())
                    {
                        return None;
                    }
                    if !toks.get(i.checked_sub(2)?)?.is_punct(".") {
                        return None;
                    }
                    let recv = receiver_base(toks, i - 2, floor)?;
                    return Some((method.text.clone(), recv));
                }
                depth -= 1;
            }
            ";" if depth == 0 => return None,
            _ => {}
        }
    }
    None
}

/// The base ident of the receiver ending right before token `dot_idx`
/// (`self.stats.cycles[i]` → `cycles`; `ENABLED` → `ENABLED`).
fn receiver_base(toks: &[Token], dot_idx: usize, floor: usize) -> Option<String> {
    let mut i = dot_idx; // points at the `.` before the method
    // Skip a trailing index expression.
    if i >= 1 && toks[i - 1].is_punct("]") {
        let mut depth = 0i32;
        let mut j = i - 1;
        while j > floor {
            match toks[j].text.as_str() {
                "]" => depth += 1,
                "[" => {
                    depth -= 1;
                    if depth == 0 {
                        i = j;
                        break;
                    }
                }
                _ => {}
            }
            j -= 1;
        }
    }
    if i >= 1 && toks[i - 1].kind == TokenKind::Ident {
        return Some(toks[i - 1].text.clone());
    }
    None
}
