//! `cargo run -p xtask -- <command>` — workspace task driver.
//!
//! Commands:
//!
//! - `lint [--json] [path]` — run apc-lint over the workspace (or an
//!   explicit root); exits nonzero when violations are found. With
//!   `--json`, emits one stable machine-readable object (schema:
//!   `root`, `count`, `findings[{rule, path, line, message, allowed}]`).
//! - `ci` — run the full tier-1 gate (release build, tests across the
//!   kernel-backend × feature matrix plus a pattern-cache-off pass, then
//!   lint) and print a one-line PASS/FAIL summary.
//! - `rules` — list the lint rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => {
            let mut json = false;
            let mut root = None;
            for arg in &args[1..] {
                if arg == "--json" {
                    json = true;
                } else if arg.starts_with('-') {
                    eprintln!("unknown lint flag `{arg}`");
                    return ExitCode::from(2);
                } else {
                    root = Some(PathBuf::from(arg));
                }
            }
            lint(root, json)
        }
        Some("ci") => ci(),
        Some("rules") => {
            for rule in xtask::RuleId::all() {
                println!("{rule}: {}", rule.summary());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint [--json] [path] | ci | rules>");
            ExitCode::from(2)
        }
    }
}

fn lint(root: Option<PathBuf>, json: bool) -> ExitCode {
    let root = root.unwrap_or_else(xtask::default_workspace_root);
    match xtask::lint_tree(&root) {
        Ok(violations) if json => {
            println!("{}", render_json(&root, &violations));
            if violations.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Ok(violations) if violations.is_empty() => {
            println!("apc-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("apc-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}

/// Renders findings as a single JSON object. The schema is stable:
/// `{"root":…,"count":N,"findings":[{"rule","path","line","message",
/// "allowed"}]}`. `allowed` is always `false` today — justified
/// `allow()` directives suppress findings before they are reported —
/// but the field keeps the schema forward-compatible with an audit
/// mode that surfaces suppressed findings too.
fn render_json(root: &std::path::Path, violations: &[xtask::Violation]) -> String {
    let mut out = String::from("{\"root\":\"");
    out.push_str(&json_escape(&root.display().to_string()));
    out.push_str("\",\"count\":");
    out.push_str(&violations.len().to_string());
    out.push_str(",\"findings\":[");
    for (i, v) in violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("{\"rule\":\"");
        out.push_str(&v.rule.to_string());
        out.push_str("\",\"path\":\"");
        out.push_str(&json_escape(&v.file.display().to_string()));
        out.push_str("\",\"line\":");
        out.push_str(&v.line.to_string());
        out.push_str(",\"message\":\"");
        out.push_str(&json_escape(&v.message));
        out.push_str("\",\"allowed\":false}");
    }
    out.push_str("]}");
    out
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out
}

/// Runs the tier-1 sequence — release build, then the test suite across
/// the kernel-backend × feature matrix (`APC_KERNEL_BACKEND` set to
/// `sliced64` and `scalar`, each with and without the `parallel`
/// feature, so every Device path runs under both kernel engines and both
/// dispatchers), a cache-off pass (`APC_PATTERN_CACHE=off`, so every
/// structural path is also exercised with the pattern-table cache
/// force-disabled — the transparency contract from the other side), the
/// network crate's own unit tests and binaries (its server/client bins
/// are not part of the root package's build graph), then in-process lint
/// — and prints a one-line summary. Stops at the first failing step so
/// the summary names the culprit.
fn ci() -> ExitCode {
    const BACKEND_ENV: &str = "APC_KERNEL_BACKEND";
    const CACHE_ENV: &str = "APC_PATTERN_CACHE";
    let steps: [(&str, &[&str], &[(&str, &str)]); 9] = [
        ("build", &["build", "--release"], &[]),
        ("test(sliced64)", &["test", "-q"], &[(BACKEND_ENV, "sliced64")]),
        ("test(scalar)", &["test", "-q"], &[(BACKEND_ENV, "scalar")]),
        ("test(cache off)", &["test", "-q"], &[(CACHE_ENV, "off")]),
        ("build(parallel)", &["build", "--release", "--features", "parallel"], &[]),
        (
            "test(parallel,sliced64)",
            &["test", "-q", "--features", "parallel"],
            &[(BACKEND_ENV, "sliced64")],
        ),
        (
            "test(parallel,scalar)",
            &["test", "-q", "--features", "parallel"],
            &[(BACKEND_ENV, "scalar")],
        ),
        ("build(net bins)", &["build", "--release", "-p", "apc-net", "--bins"], &[]),
        ("test(net)", &["test", "-q", "-p", "apc-net"], &[]),
    ];
    for (name, cargo_args, env) in steps {
        let env_prefix: String =
            env.iter().map(|(k, v)| format!("{k}={v} ")).collect();
        println!("ci: {env_prefix}cargo {}", cargo_args.join(" "));
        match std::process::Command::new("cargo")
            .args(cargo_args)
            .envs(env.iter().copied())
            .status()
        {
            Ok(status) if status.success() => {}
            Ok(_) => {
                println!("ci: FAIL ({name})");
                return ExitCode::FAILURE;
            }
            Err(e) => {
                eprintln!("ci: could not spawn cargo: {e}");
                println!("ci: FAIL ({name})");
                return ExitCode::FAILURE;
            }
        }
    }
    println!("ci: apc-lint");
    let root = xtask::default_workspace_root();
    match xtask::lint_tree(&root) {
        Ok(v) if v.is_empty() => {
            println!(
                "ci: PASS (build, test x {{sliced64,scalar}} x {{default,parallel}}, \
                 test x cache-off, net bins+tests, lint)"
            );
            ExitCode::SUCCESS
        }
        Ok(v) => {
            for finding in &v {
                println!("{finding}");
            }
            println!("ci: FAIL (lint, {} violation(s))", v.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            println!("ci: FAIL (lint)");
            ExitCode::FAILURE
        }
    }
}
