//! `cargo run -p xtask -- <command>` — workspace task driver.
//!
//! Commands:
//!
//! - `lint [path]` — run apc-lint over the workspace (or an explicit
//!   root); exits nonzero when violations are found.
//! - `rules` — list the lint rules.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.get(1).map(PathBuf::from)),
        Some("rules") => {
            for rule in xtask::RuleId::all() {
                println!("{rule}: {}", rule.summary());
            }
            ExitCode::SUCCESS
        }
        _ => {
            eprintln!("usage: cargo run -p xtask -- <lint [path] | rules>");
            ExitCode::from(2)
        }
    }
}

fn lint(root: Option<PathBuf>) -> ExitCode {
    let root = root.unwrap_or_else(xtask::default_workspace_root);
    match xtask::lint_tree(&root) {
        Ok(violations) if violations.is_empty() => {
            println!("apc-lint: clean ({})", root.display());
            ExitCode::SUCCESS
        }
        Ok(violations) => {
            for v in &violations {
                println!("{v}");
            }
            println!("apc-lint: {} violation(s)", violations.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("{e}");
            ExitCode::from(2)
        }
    }
}
