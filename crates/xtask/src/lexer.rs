//! Full-text Rust lexer — the foundation of the token-tree engine.
//!
//! Unlike the original per-line masking scanner, this lexer walks the
//! *whole file* as one character stream, so constructs that span lines
//! (raw strings, multi-line string literals, nested block comments) are
//! classified correctly, and `'a` lifetimes are separated from `'x'` char
//! literals by a full lookahead instead of a two-character peek.
//!
//! One pass produces three views that the rest of the engine consumes:
//!
//! 1. a token stream ([`Token`]) — identifiers, lifetimes, literals and
//!    (greedily combined) punctuation, each tagged with its 1-based line;
//! 2. per-line *code masks* (comments and literal contents blanked) that
//!    the original line-oriented rules keep using unchanged;
//! 3. per-line *comment text*, from which `apc-lint:` directives and doc
//!    anchors are read back out.

/// Classification of one lexed token.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokenKind {
    /// An identifier or keyword (`fn`, `carry`, `Limb`, …).
    Ident,
    /// A lifetime or loop label (`'a`, `'outer`), *without* the quote.
    Lifetime,
    /// A literal: string/raw-string/char contents are dropped (the token
    /// text is `""` or `''`); numeric literals keep their text.
    Literal,
    /// Punctuation, greedily combined (`<<`, `::`, `->`, `+=`, …).
    Punct,
}

/// One token with its source line (1-based).
#[derive(Debug, Clone)]
pub struct Token {
    /// What kind of token this is.
    pub kind: TokenKind,
    /// The token text (empty contents for string/char literals).
    pub text: String,
    /// 1-based line on which the token starts.
    pub line: usize,
}

impl Token {
    /// Whether this token is the identifier `s`.
    pub fn is_ident(&self, s: &str) -> bool {
        self.kind == TokenKind::Ident && self.text == s
    }

    /// Whether this token is the punctuation `s`.
    pub fn is_punct(&self, s: &str) -> bool {
        self.kind == TokenKind::Punct && self.text == s
    }
}

/// Everything one lexer pass produces.
#[derive(Debug)]
pub struct LexOutput {
    /// The token stream (comments and whitespace removed).
    pub tokens: Vec<Token>,
    /// Line text with comments and literal contents blanked.
    pub code_lines: Vec<String>,
    /// Comment text per line (everything inside a comment on that line).
    pub comment_lines: Vec<String>,
}

/// Multi-character punctuation, longest first so combination is greedy.
const PUNCT3: &[&str] = &["<<=", ">>=", "..=", "..."];
const PUNCT2: &[&str] = &[
    "<<", ">>", "::", "->", "=>", "==", "!=", "<=", ">=", "&&", "||", "+=", "-=", "*=", "/=",
    "%=", "^=", "|=", "&=", "..",
];

struct Lexer<'a> {
    chars: Vec<char>,
    src: &'a str,
    pos: usize,
    line: usize,
    tokens: Vec<Token>,
    code_lines: Vec<String>,
    comment_lines: Vec<String>,
    code_buf: String,
    comment_buf: String,
}

/// Lexes `text` into tokens plus the per-line code/comment masks.
pub fn lex(text: &str) -> LexOutput {
    let mut lx = Lexer {
        chars: text.chars().collect(),
        src: text,
        pos: 0,
        line: 1,
        tokens: Vec::new(),
        code_lines: Vec::new(),
        comment_lines: Vec::new(),
        code_buf: String::new(),
        comment_buf: String::new(),
    };
    lx.run();
    // `str::lines` semantics: a trailing newline does not open one more
    // (empty) line, but a file not ending in a newline still flushed its
    // last line inside `run`.
    LexOutput {
        tokens: lx.tokens,
        code_lines: lx.code_lines,
        comment_lines: lx.comment_lines,
    }
}

impl Lexer<'_> {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    /// Consumes one char into the code mask verbatim.
    fn take_code(&mut self) {
        if let Some(c) = self.peek(0) {
            self.advance(c, MaskSink::Code, false);
        }
    }

    /// Consumes one char, blanking it in the code mask.
    fn take_blank(&mut self) {
        if let Some(c) = self.peek(0) {
            self.advance(c, MaskSink::Code, true);
        }
    }

    /// Consumes one char into the comment mask (code mask gets a blank).
    fn take_comment(&mut self) {
        if let Some(c) = self.peek(0) {
            self.advance(c, MaskSink::Comment, true);
        }
    }

    fn advance(&mut self, c: char, sink: MaskSink, blank: bool) {
        self.pos += 1;
        if c == '\n' {
            self.flush_line();
            return;
        }
        match sink {
            MaskSink::Code => self.code_buf.push(if blank { ' ' } else { c }),
            MaskSink::Comment => {
                self.comment_buf.push(c);
                self.code_buf.push(' ');
            }
        }
    }

    fn flush_line(&mut self) {
        self.code_lines.push(std::mem::take(&mut self.code_buf));
        self.comment_lines.push(std::mem::take(&mut self.comment_buf));
        self.line += 1;
    }

    fn push_token(&mut self, kind: TokenKind, text: String, line: usize) {
        self.tokens.push(Token { kind, text, line });
    }

    fn run(&mut self) {
        while let Some(c) = self.peek(0) {
            match c {
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment(),
                '"' => self.string_literal(),
                '\'' => self.quote(),
                c if c.is_ascii_digit() => self.number(),
                c if c.is_alphabetic() || c == '_' => self.word(),
                c if c.is_whitespace() => self.take_code(),
                _ => self.punct(),
            }
        }
        if !self.code_buf.is_empty()
            || !self.comment_buf.is_empty()
            || !self.src.is_empty() && !self.src.ends_with('\n')
        {
            self.flush_line();
        }
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                self.take_code(); // flushes the line
                return;
            }
            self.take_comment();
        }
    }

    fn block_comment(&mut self) {
        let mut depth = 0u32;
        while let Some(c) = self.peek(0) {
            if c == '/' && self.peek(1) == Some('*') {
                depth += 1;
                self.take_comment();
                self.take_comment();
                continue;
            }
            if c == '*' && self.peek(1) == Some('/') {
                depth -= 1;
                self.take_comment();
                self.take_comment();
                if depth == 0 {
                    return;
                }
                continue;
            }
            self.take_comment();
        }
    }

    /// A plain (escapable, possibly multi-line) string literal.
    fn string_literal(&mut self) {
        let line = self.line;
        self.take_code(); // opening quote
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.take_blank();
                    self.take_blank();
                }
                '"' => {
                    self.take_code();
                    self.push_token(TokenKind::Literal, "\"\"".to_string(), line);
                    return;
                }
                _ => self.take_blank(),
            }
        }
        self.push_token(TokenKind::Literal, "\"\"".to_string(), line);
    }

    /// A raw string literal; `hashes` were already counted (not consumed).
    fn raw_string(&mut self, hashes: usize) {
        let line = self.line;
        for _ in 0..hashes + 1 {
            self.take_code(); // the `#`s and the opening quote
        }
        loop {
            let Some(c) = self.peek(0) else { break };
            if c == '"' {
                let mut seen = 0usize;
                while seen < hashes && self.peek(1 + seen) == Some('#') {
                    seen += 1;
                }
                if seen == hashes {
                    for _ in 0..hashes + 1 {
                        self.take_code();
                    }
                    self.push_token(TokenKind::Literal, "\"\"".to_string(), line);
                    return;
                }
            }
            self.take_blank();
        }
        self.push_token(TokenKind::Literal, "\"\"".to_string(), line);
    }

    /// `'`: a lifetime/label (`'a`, `'outer`) or a char literal (`'x'`,
    /// `'\n'`). Disambiguated by full lookahead: an identifier run after
    /// the quote that is *not* closed by another quote is a lifetime.
    fn quote(&mut self) {
        let mut len = 0usize;
        while self
            .peek(1 + len)
            .is_some_and(|c| c.is_alphanumeric() || c == '_')
        {
            len += 1;
        }
        let is_lifetime = len > 0
            && self.peek(1 + len) != Some('\'')
            && !self.peek(1).is_some_and(|c| c.is_ascii_digit());
        if is_lifetime {
            let line = self.line;
            let name: String = self.chars[self.pos + 1..self.pos + 1 + len].iter().collect();
            for _ in 0..len + 1 {
                self.take_code();
            }
            self.push_token(TokenKind::Lifetime, name, line);
            return;
        }
        // Char literal: quote, contents (escapes), quote.
        let line = self.line;
        self.take_code();
        while let Some(c) = self.peek(0) {
            match c {
                '\\' => {
                    self.take_blank();
                    self.take_blank();
                }
                '\'' => {
                    self.take_code();
                    break;
                }
                '\n' => break, // unterminated; never cross a line
                _ => self.take_blank(),
            }
        }
        self.push_token(TokenKind::Literal, "''".to_string(), line);
    }

    /// A numeric literal (digits, suffixes, underscores; `1.5e3` splits
    /// at the dot, which is fine — no rule needs float structure).
    fn number(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.take_code();
            } else {
                break;
            }
        }
        self.push_token(TokenKind::Literal, text, line);
    }

    /// An identifier/keyword — or the prefix of a raw string (`r"`,
    /// `r#"`, `br"`) / byte string (`b"`) / byte char (`b'`) / raw
    /// identifier (`r#ident`).
    fn word(&mut self) {
        let line = self.line;
        let mut text = String::new();
        while let Some(c) = self.peek(0) {
            if c.is_alphanumeric() || c == '_' {
                text.push(c);
                self.take_code();
            } else {
                break;
            }
        }
        if text == "r" || text == "b" || text == "br" || text == "rb" {
            let mut hashes = 0usize;
            while self.peek(hashes) == Some('#') {
                hashes += 1;
            }
            if self.peek(hashes) == Some('"') && (text != "b" || hashes == 0) {
                // r"..", r#".."#, br".."; `b` takes no hashes.
                self.raw_string(hashes);
                return;
            }
            if text == "b" && hashes == 0 && self.peek(0) == Some('\'') {
                self.quote(); // byte char literal b'x'
                return;
            }
            if text == "r" && hashes == 1 && self.peek(1).is_some_and(is_ident_start) {
                // Raw identifier r#ident: emit the identifier itself.
                self.take_code(); // '#'
                let mut raw = String::new();
                while let Some(c) = self.peek(0) {
                    if c.is_alphanumeric() || c == '_' {
                        raw.push(c);
                        self.take_code();
                    } else {
                        break;
                    }
                }
                self.push_token(TokenKind::Ident, raw, line);
                return;
            }
        }
        self.push_token(TokenKind::Ident, text, line);
    }

    fn punct(&mut self) {
        let line = self.line;
        let at = |k: usize| self.peek(k);
        let matches3 = PUNCT3
            .iter()
            .find(|p| {
                p.chars()
                    .enumerate()
                    .all(|(k, pc)| at(k) == Some(pc))
            })
            .copied();
        if let Some(p) = matches3 {
            for _ in 0..p.len() {
                self.take_code();
            }
            self.push_token(TokenKind::Punct, p.to_string(), line);
            return;
        }
        let matches2 = PUNCT2
            .iter()
            .find(|p| {
                p.chars()
                    .enumerate()
                    .all(|(k, pc)| at(k) == Some(pc))
            })
            .copied();
        if let Some(p) = matches2 {
            for _ in 0..p.len() {
                self.take_code();
            }
            self.push_token(TokenKind::Punct, p.to_string(), line);
            return;
        }
        if let Some(c) = self.peek(0) {
            self.take_code();
            self.push_token(TokenKind::Punct, c.to_string(), line);
        }
    }
}

fn is_ident_start(c: char) -> bool {
    c.is_alphabetic() || c == '_'
}

#[derive(Clone, Copy)]
enum MaskSink {
    Code,
    Comment,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokenKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn raw_strings_hide_contents_and_close_on_matching_hashes() {
        let out = lex("let s = r#\"as u32 \" inner\"#; let t = 1;\n");
        assert!(!out.code_lines[0].contains("as u32"));
        assert!(out.code_lines[0].contains("let t = 1;"));
        assert!(idents("let s = r#\"panic!\"#;").iter().all(|i| i != "panic"));
    }

    #[test]
    fn raw_strings_span_lines() {
        // Two hashes: the inner `"#` does NOT close the string; `"##` does.
        let out = lex("let s = r##\"line one\nline two \"# still inside\nend\"##;\nlet x = 2;\n");
        assert!(!out.code_lines[1].contains("line two"));
        assert!(!out.code_lines[1].contains("still inside"));
        assert!(!out.code_lines[2].contains("end"));
        assert!(out.code_lines[3].contains("let x = 2;"));
    }

    #[test]
    fn plain_strings_span_lines() {
        let out = lex("let s = \"first\nsecond panic!()\";\nlet y = 3;\n");
        assert!(!out.code_lines[1].contains("panic"));
        assert!(out.code_lines[1].ends_with(';'));
        assert!(out.code_lines[2].contains("let y = 3;"));
    }

    #[test]
    fn nested_block_comments_balance() {
        let out = lex("a /* one /* two */ still comment */ b\n");
        assert!(out.code_lines[0].contains('a'));
        assert!(out.code_lines[0].contains('b'));
        assert!(!out.code_lines[0].contains("still"));
        assert!(out.comment_lines[0].contains("still comment"));
    }

    #[test]
    fn nested_block_comments_span_lines() {
        let out = lex("x /* a\n/* b */\nc */ y\n");
        assert!(!out.code_lines[1].contains('b'));
        assert!(out.code_lines[2].contains('y'));
        assert!(!out.code_lines[2].contains('c'));
    }

    #[test]
    fn lifetimes_vs_char_literals() {
        let toks = lex("fn f<'a>(x: &'a str) -> char { let c: char = 'x'; 'b' }").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["a", "a"]);
        let chars = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Literal && t.text == "''")
            .count();
        assert_eq!(chars, 2);
    }

    #[test]
    fn labels_and_static_lifetime_are_lifetimes() {
        let toks = lex("'outer: loop { break 'outer; } let s: &'static str = \"\";").tokens;
        let lifetimes: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Lifetime)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(lifetimes, vec!["outer", "outer", "static"]);
    }

    #[test]
    fn escaped_quotes_in_char_and_string() {
        let out = lex("let q = '\\''; let s = \"he said \\\"panic!\\\" loudly\";\n");
        assert!(!out.code_lines[0].contains("panic"));
        let toks = lex("let q = '\\''; let x = 1;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("x")), "lexing continues after escaped char");
    }

    #[test]
    fn shifts_and_paths_combine_greedily() {
        let toks = lex("a << b; c >> d; e::f; g <<= h;").tokens;
        let puncts: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokenKind::Punct && t.text.len() > 1)
            .map(|t| t.text.as_str())
            .collect();
        assert_eq!(puncts, vec!["<<", ">>", "::", "<<="]);
    }

    #[test]
    fn tokens_carry_line_numbers() {
        let toks = lex("fn a() {}\n\nfn b() {}\n").tokens;
        let b_line = toks
            .iter()
            .find(|t| t.is_ident("b"))
            .map(|t| t.line);
        assert_eq!(b_line, Some(3));
    }

    #[test]
    fn byte_strings_and_raw_idents() {
        let out = lex("let b = b\"panic!\"; let r = r#match; let br = br\"as u32\";\n");
        assert!(!out.code_lines[0].contains("panic"));
        assert!(!out.code_lines[0].contains("as u32"));
        let toks = lex("let x = r#match;").tokens;
        assert!(toks.iter().any(|t| t.is_ident("match")), "raw ident keeps its name");
    }

    #[test]
    fn line_comment_text_is_recoverable() {
        let out = lex("let x = 1; // apc-lint: allow(L2) -- reason\n");
        assert!(out.comment_lines[0].contains("apc-lint: allow(L2) -- reason"));
        assert!(!out.code_lines[0].contains("apc-lint"));
    }

    #[test]
    fn file_without_trailing_newline_keeps_last_line() {
        let out = lex("let x = 1;");
        assert_eq!(out.code_lines.len(), 1);
        assert!(out.code_lines[0].contains("let x = 1;"));
    }
}
