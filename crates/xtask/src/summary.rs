//! Per-function call/acquisition summaries.
//!
//! For every non-test function in the item map, one walk over its body
//! tokens yields: which locks it acquires (and which guards were already
//! held at each acquisition), and which functions it calls (and under
//! which held guards). [`crate::flow`] stitches these into the
//! cross-file lock-order graph.
//!
//! Guard lifetimes are tracked structurally: a guard bound by `let` lives
//! to the end of its enclosing block (or an explicit `drop(binding)`); an
//! unbound guard (`self.lock().push(x);`) is a temporary that dies at the
//! statement's `;`.

use crate::items::{FnItem, Workspace};
use crate::lexer::TokenKind;
use crate::scan::SourceFile;

/// One lock acquisition inside a function body.
#[derive(Debug)]
pub struct Acquisition {
    /// Lock name, crate-qualified (`crates/serve::state`).
    pub lock: String,
    /// 1-based source line of the acquisition.
    pub line: usize,
    /// Locks already held at this point (crate-qualified).
    pub held: Vec<String>,
}

/// One call site inside a function body.
#[derive(Debug)]
pub struct CallSite {
    /// Last path segment of the callee (`push`, `duration_ns`, …).
    pub callee: String,
    /// First path segment when the call is path-qualified
    /// (`apc_trace::…` → `apc_trace`), empty otherwise.
    pub path_root: String,
    /// 1-based source line of the call.
    pub line: usize,
    /// Locks held at the call (crate-qualified).
    pub held: Vec<String>,
}

/// Summary of one function body.
#[derive(Debug)]
pub struct FnSummary {
    /// Index into [`Workspace::fns`].
    pub fn_idx: usize,
    /// Every lock acquisition, in body order.
    pub acquisitions: Vec<Acquisition>,
    /// Every call site, in body order.
    pub calls: Vec<CallSite>,
}

#[derive(Debug)]
struct GuardScope {
    lock: String,
    binding: Option<String>,
    depth: i32,
}

/// Builds summaries for all non-test functions.
pub fn summarize(sources: &[SourceFile], ws: &Workspace) -> Vec<FnSummary> {
    let mut out = Vec::new();
    for (fn_idx, f) in ws.fns.iter().enumerate() {
        if f.is_test || f.body_start >= f.body_end {
            continue;
        }
        out.push(summarize_fn(sources, ws, fn_idx, f));
    }
    out
}

/// Token ranges of functions nested inside `f` (skipped during the walk —
/// their bodies execute under their own call frames, not `f`'s locks).
fn nested_ranges(ws: &Workspace, f: &FnItem) -> Vec<(usize, usize)> {
    ws.fns
        .iter()
        .filter(|g| {
            g.file == f.file && g.sig_start > f.sig_start && g.body_end <= f.body_end
        })
        .map(|g| (g.sig_start, g.body_end))
        .collect()
}

fn summarize_fn(sources: &[SourceFile], ws: &Workspace, fn_idx: usize, f: &FnItem) -> FnSummary {
    let toks = &sources[f.file].tokens;
    let crate_dir = &ws.crate_of_file[f.file];
    let nested = nested_ranges(ws, f);
    let qualify = |lock: &str| format!("{crate_dir}::{lock}");

    let mut guards: Vec<GuardScope> = Vec::new();
    let mut acquisitions = Vec::new();
    let mut calls = Vec::new();
    let mut depth: i32 = 0;
    // The binding of the innermost pending `let` in the current statement.
    let mut pending_let: Option<String> = None;

    let mut i = f.body_start;
    while i < f.body_end {
        if let Some(&(_, end)) = nested.iter().find(|&&(s, e)| i >= s && i < e) {
            i = end;
            continue;
        }
        let t = &toks[i];
        match t.text.as_str() {
            "{" if t.kind == TokenKind::Punct => depth += 1,
            "}" if t.kind == TokenKind::Punct => {
                depth -= 1;
                guards.retain(|g| g.depth <= depth);
            }
            ";" if t.kind == TokenKind::Punct => {
                // Temporary (unbound) guards die at the statement end.
                guards.retain(|g| g.binding.is_some() || g.depth < depth);
                pending_let = None;
            }
            "let" if t.kind == TokenKind::Ident => {
                let mut j = i + 1;
                while toks.get(j).is_some_and(|t| t.is_ident("mut")) {
                    j += 1;
                }
                if let Some(name) = toks.get(j).filter(|t| t.kind == TokenKind::Ident) {
                    pending_let = Some(name.text.clone());
                }
            }
            "drop" if t.kind == TokenKind::Ident => {
                // `drop(binding)` releases that guard early.
                let dropped = toks
                    .get(i + 1)
                    .filter(|t| t.is_punct("("))
                    .and_then(|_| toks.get(i + 2))
                    .filter(|t| t.kind == TokenKind::Ident)
                    .map(|t| t.text.clone());
                if let Some(name) = dropped {
                    guards.retain(|g| g.binding.as_deref() != Some(&name));
                }
            }
            _ => {}
        }

        // Acquisition patterns, checked at the receiver ident.
        if t.kind == TokenKind::Ident {
            if let Some(lock) = acquisition_at(toks, i, f, crate_dir, ws) {
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                acquisitions.push(Acquisition {
                    lock: qualify(&lock),
                    line: t.line,
                    held,
                });
                guards.push(GuardScope {
                    lock: qualify(&lock),
                    binding: pending_let.clone(),
                    depth,
                });
            } else if toks.get(i + 1).is_some_and(|n| n.is_punct("(")) && !is_keyword(&t.text) {
                let held: Vec<String> = guards.iter().map(|g| g.lock.clone()).collect();
                calls.push(CallSite {
                    callee: t.text.clone(),
                    path_root: path_root(toks, i),
                    line: t.line,
                    held,
                });
            }
        }
        i += 1;
    }

    FnSummary {
        fn_idx,
        acquisitions,
        calls,
    }
}

/// If the ident at `i` is the receiver/callee of a lock acquisition,
/// returns the (unqualified) lock name.
///
/// Recognized shapes:
/// - `<recv>.lock()` — lock named `recv` (skipping a `self.` prefix);
/// - `<recv>.helper()` / `self.helper()` / `helper()` where `helper` is a
///   guard-returning helper of the same crate — the helper's lock.
fn acquisition_at(
    toks: &[crate::lexer::Token],
    i: usize,
    f: &FnItem,
    crate_dir: &str,
    ws: &Workspace,
) -> Option<String> {
    let name = &toks[i].text;
    let is_call = toks.get(i + 1).is_some_and(|t| t.is_punct("("));
    if !is_call || i < f.body_start {
        return None;
    }
    // `<recv>.lock()`: the callee ident is `lock` and a receiver precedes.
    if name == "lock" && i >= 2 && toks[i - 1].is_punct(".") {
        let recv = &toks[i - 2];
        if recv.kind == TokenKind::Ident && recv.text != "self" {
            return Some(recv.text.clone());
        }
        // `self.lock()` — resolve through the helper table.
        if recv.is_ident("self") {
            if let Some(lock) = ws
                .guard_helpers
                .get(&(crate_dir.to_string(), "lock".to_string()))
            {
                return Some(lock.clone());
            }
        }
        return None;
    }
    // Helper call: `self.lock_tallies()` / `lock_tallies()`.
    if let Some(lock) = ws
        .guard_helpers
        .get(&(crate_dir.to_string(), name.clone()))
    {
        // Do not count the helper's own body as calling itself.
        if ws.fns[..].iter().enumerate().any(|(idx, g)| {
            ws.fn_by_name
                .get(&(crate_dir.to_string(), name.clone()))
                .is_some_and(|v| v.contains(&idx))
                && g.sig_start <= i
                && i < g.body_end
                && g.file == f.file
        }) {
            return None;
        }
        return Some(lock.clone());
    }
    None
}

/// For a path-qualified call (`apc_trace::span::duration_ns(..)`), the
/// first path segment; empty for bare and method calls.
fn path_root(toks: &[crate::lexer::Token], callee_idx: usize) -> String {
    let mut i = callee_idx;
    let mut root = String::new();
    while i >= 2 && toks[i - 1].is_punct("::") && toks[i - 2].kind == TokenKind::Ident {
        root = toks[i - 2].text.clone();
        i -= 2;
    }
    root
}

fn is_keyword(s: &str) -> bool {
    matches!(
        s,
        "if" | "while" | "for" | "match" | "loop" | "return" | "fn" | "let" | "move" | "in"
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::items;
    use crate::scan::scan_rust;

    fn summaries(src: &str) -> (Vec<SourceFile>, Workspace, Vec<FnSummary>) {
        let files = vec![scan_rust("crates/serve/src/queue.rs", src)];
        let ws = items::build(&files, &[]);
        let sums = summarize(&files, &ws);
        (files, ws, sums)
    }

    fn fn_summary<'a>(
        ws: &Workspace,
        sums: &'a [FnSummary],
        name: &str,
    ) -> &'a FnSummary {
        let found = sums
            .iter()
            .find(|s| ws.fns[s.fn_idx].name == name);
        match found {
            Some(s) => s,
            None => unreachable!("no summary for fn `{name}`"),
        }
    }

    #[test]
    fn direct_lock_acquisition_is_recorded() {
        let (_, ws, sums) = summaries("fn f(a: &Mutex<u32>) { let g = a.lock(); use_it(g); }\n");
        let s = fn_summary(&ws, &sums, "f");
        assert_eq!(s.acquisitions.len(), 1);
        assert_eq!(s.acquisitions[0].lock, "crates/serve::a");
        assert!(s.acquisitions[0].held.is_empty());
    }

    #[test]
    fn nested_acquisition_sees_held_lock() {
        let (_, ws, sums) =
            summaries("fn f() { let g = alpha.lock(); let h = beta.lock(); }\n");
        let s = fn_summary(&ws, &sums, "f");
        assert_eq!(s.acquisitions.len(), 2);
        assert_eq!(s.acquisitions[1].held, vec!["crates/serve::alpha"]);
    }

    #[test]
    fn drop_releases_a_guard() {
        let (_, ws, sums) = summaries(
            "fn f() { let g = alpha.lock(); drop(g); let h = beta.lock(); }\n",
        );
        let s = fn_summary(&ws, &sums, "f");
        assert!(s.acquisitions[1].held.is_empty());
    }

    #[test]
    fn block_scoped_guard_is_released_at_brace() {
        let (_, ws, sums) =
            summaries("fn f() { { let g = alpha.lock(); } let h = beta.lock(); }\n");
        let s = fn_summary(&ws, &sums, "f");
        assert!(s.acquisitions[1].held.is_empty());
    }

    #[test]
    fn temporary_guard_dies_at_statement_end() {
        let (_, ws, sums) =
            summaries("fn f() { alpha.lock().push(1); let h = beta.lock(); }\n");
        let s = fn_summary(&ws, &sums, "f");
        assert!(s.acquisitions[1].held.is_empty());
    }

    #[test]
    fn calls_record_held_locks() {
        let (_, ws, sums) = summaries("fn f() { let g = alpha.lock(); helper(1); }\n");
        let s = fn_summary(&ws, &sums, "f");
        let call = s.calls.iter().find(|c| c.callee == "helper");
        assert!(call.is_some_and(|c| c.held == vec!["crates/serve::alpha"]));
    }

    #[test]
    fn guard_helper_calls_count_as_acquisitions() {
        let (_, ws, sums) = summaries(
            "impl Q {\n\
             fn lock(&self) -> MutexGuard<'_, State> { self.state.lock() }\n\
             fn use_it(&self) { let s = self.lock(); let d = dispatch.lock(); }\n\
             }\n",
        );
        let s = fn_summary(&ws, &sums, "use_it");
        assert_eq!(s.acquisitions.len(), 2);
        assert_eq!(s.acquisitions[0].lock, "crates/serve::state");
        assert_eq!(s.acquisitions[1].held, vec!["crates/serve::state"]);
    }

    #[test]
    fn path_roots_are_captured() {
        let (_, ws, sums) =
            summaries("fn f() { apc_trace::span::duration_ns(d); plain(); }\n");
        let s = fn_summary(&ws, &sums, "f");
        let roots: Vec<(&str, &str)> = s
            .calls
            .iter()
            .map(|c| (c.callee.as_str(), c.path_root.as_str()))
            .collect();
        assert!(roots.contains(&("duration_ns", "apc_trace")));
        assert!(roots.contains(&("plain", "")));
    }
}
