//! Cross-domain flows: L10 must flag each crossing of the cycle and
//! Instant-ns time domains.

use apc_trace::{Log2Histogram, Span};

/// Metrics block with one histogram per domain.
pub struct Mixed {
    service_cycles: Log2Histogram,
    latency_ns: Log2Histogram,
}

impl Mixed {
    /// Records a wall-clock value into the cycle histogram. (1)
    pub fn cross_record_a(&self, elapsed_ns: u64) {
        self.service_cycles.record(elapsed_ns);
    }

    /// Records a device-clock value into the ns histogram. (2)
    pub fn cross_record_b(&self, cycles: u64) {
        self.latency_ns.record(cycles);
    }

    /// Opens a wall-clock span over a cycle histogram. (3)
    pub fn span_over_cycles(&self) -> Span<'_> {
        Span::enter(&self.service_cycles)
    }

    /// Binds an ns-named value from the cycle domain. (4)
    pub fn mixed_binding(&self, cycles: u64) -> u64 {
        let total_ns = cycles + 1;
        total_ns
    }
}
