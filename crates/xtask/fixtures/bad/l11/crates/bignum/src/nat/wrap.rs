//! Bare limb arithmetic: L11 must flag each wrapping-capable operator
//! on a limb-typed left operand — and nothing else.

use crate::limb::{adc, Limb};

/// Four bare ops on limb-typed values: `+`, `*`, `<<`, `-`.
pub fn bad_ops(acc: Limb, step: Limb) -> (Limb, Limb) {
    let doubled: Limb = acc + acc;
    let scaled: Limb = step * 3;
    let shifted: Limb = acc << 3;
    let diff: Limb = doubled - scaled;
    let _ = shifted;
    (shifted, diff)
}

/// Helper-routed and explicit forms stay clean, and usize index
/// arithmetic must not be mistaken for limb arithmetic.
pub fn good_ops(a: Limb, b: Limb, xs: &[Limb]) -> Limb {
    let (s, c) = adc(a, b, 0);
    let wrapped = a.wrapping_add(b);
    let idx = xs.len() + 1;
    let _ = (c, idx);
    s.checked_mul(2).unwrap_or(wrapped)
}
