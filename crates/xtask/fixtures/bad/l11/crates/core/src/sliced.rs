//! Sliced-kernel discipline (§IV-B): values loaded or reborrowed out of
//! a limb slice are limb-typed too, so L11 must follow the typing
//! through element loads, range reborrows, and enumerate loops.

use crate::limb::Limb;

/// Three bare ops reachable only through flow-through typing: an element
/// load (`words[0]`), a range reborrow (`&ys_flat[1..3]`), and an
/// enumerate element.
fn sliced_bad(words: &[Limb], ys_flat: &[Limb]) -> Limb {
    let w = words[0];
    let bumped = w + 1;
    let ys = &ys_flat[1..3];
    let folded = ys[0] * 3;
    let mut acc: Limb = 0;
    for (_, &y) in words.iter().enumerate() {
        acc = y << 1;
    }
    bumped.wrapping_add(folded).wrapping_add(acc)
}

/// Flow-through typing must not leak: indexing a non-limb slice, method
/// results, and helper-routed forms all stay clean.
fn sliced_good(words: &[Limb], offsets: &[usize]) -> Limb {
    let base = offsets[0];
    let shifted = base + 1;
    let tail = &words[1..];
    let count = tail.len() + shifted;
    let w = words[0];
    let _ = count;
    w.wrapping_mul(3)
}
