//! Relaxed cache-gate atomics: the pattern-table cache's enable switch
//! (§VII repeated-operand reuse) is a gate flag, not a statistic — a
//! relaxed access on it can let a reader act on the switch while missing
//! the `clear()` the switch was supposed to publish. L12 must flag both
//! gate accesses and leave the hit counter alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Process-wide switch over the Fig. 8 pattern-table cache.
static CACHE_GATE: AtomicBool = AtomicBool::new(true);

/// Hit statistic for the §VII-B snapshot/delta idiom.
static HITS: AtomicU64 = AtomicU64::new(0);

/// Relaxed store on the gate publishes nothing: a reader can observe the
/// cache "on" before the cleared Fig. 8 tables are visible. (1)
pub fn set_enabled(on: bool) {
    CACHE_GATE.store(on, Ordering::Relaxed);
}

/// Relaxed probe of the gate synchronizes with nothing (§VII). (2)
pub fn enabled() -> bool {
    CACHE_GATE.load(Ordering::Relaxed)
}

/// Relaxed on the hit statistic is exactly right — not flagged (§VII-B).
pub fn count_hit() {
    HITS.fetch_add(1, Ordering::Relaxed);
}
