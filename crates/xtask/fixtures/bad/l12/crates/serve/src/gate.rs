//! Relaxed flag atomics: L12 must flag gate/flag accesses while leaving
//! statistic counters alone.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// Shutdown gate plus a plain statistic counter.
pub struct Gate {
    shutdown: AtomicBool,
    jobs: AtomicU64,
}

impl Gate {
    /// Relaxed store on a flag publishes nothing. (1)
    pub fn begin_shutdown(&self) {
        self.shutdown.store(true, Ordering::Relaxed);
    }

    /// Relaxed load on a flag observes nothing. (2)
    pub fn is_shutdown(&self) -> bool {
        self.shutdown.load(Ordering::Relaxed)
    }

    /// Relaxed on a statistic counter is exactly right — not flagged.
    pub fn count_job(&self) {
        self.jobs.fetch_add(1, Ordering::Relaxed);
    }
}
