//! Relaxed pool atomics: L12's scope includes the work-stealing pool
//! behind the rayon facade, so its gate/park flags get the same audit as
//! workspace flag atomics.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

/// A latch-style gate plus a steal statistic.
pub struct WorkerLatch {
    done: AtomicBool,
    steals: AtomicU64,
}

impl WorkerLatch {
    /// Relaxed store on the latch: the waiter may observe `done` before
    /// the result write it gates becomes visible. (1)
    pub fn set(&self) {
        self.done.store(true, Ordering::Relaxed);
    }

    /// Relaxed probe of the latch synchronizes with nothing. (2)
    pub fn probe(&self) -> bool {
        self.done.load(Ordering::Relaxed)
    }

    /// Relaxed on a statistic counter is exactly right — not flagged.
    pub fn count_steal(&self) {
        self.steals.fetch_add(1, Ordering::Relaxed);
    }
}
