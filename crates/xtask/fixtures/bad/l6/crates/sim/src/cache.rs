//! Interior-mutability traps: L6 must flag cells in pub struct fields.

use std::cell::{Cell, RefCell};

/// An exported handle that silently became !Sync.
pub struct Tracker {
    hits: RefCell<u64>,
}

/// Same trap through a plain Cell.
pub struct Counter {
    count: Cell<u32>,
}

/// Private types may stay single-threaded.
struct Scratch {
    buf: RefCell<Vec<u64>>,
}

/// Justified single-threaded design is allowed.
pub struct Replay {
    // apc-lint: allow(L6) -- replay decks are thread-local by design
    deck: RefCell<Vec<u64>>,
}

/// Keeps the private fields referenced so the fixture reads naturally.
pub fn touch(t: &Tracker, c: &Counter, s: &Scratch, r: &Replay) -> u64 {
    *t.hits.borrow() + u64::from(c.count.get()) + s.buf.borrow().len() as u64
        + r.deck.borrow().len() as u64
}
