//! A crate root missing both mandatory attributes: L1 must fire twice.

/// Documented, panic-free — only L1 applies here.
pub fn seven() -> u64 {
    7
}
