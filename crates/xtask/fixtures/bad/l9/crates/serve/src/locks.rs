//! Opposite-order lock acquisitions: L9 must flag both sides of the
//! cycle (one finding per edge site).

use std::sync::{Mutex, MutexGuard, PoisonError};

/// Paired state with two independently-locked halves.
pub struct Pair {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
}

impl Pair {
    /// Guard helper for the alpha half (calls to it count as acquiring
    /// `alpha`).
    fn lock_alpha(&self) -> MutexGuard<'_, u64> {
        self.alpha.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Takes alpha, then beta.
    pub fn forward(&self) -> u64 {
        let a = self.lock_alpha();
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        *a + *b
    }

    /// Takes beta, then alpha — the reverse order. Two threads running
    /// `forward` and `backward` concurrently can deadlock.
    pub fn backward(&self) -> u64 {
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        let a = self.lock_alpha();
        *b - *a
    }
}
