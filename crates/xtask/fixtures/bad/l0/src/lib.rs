//! Malformed `apc-lint:` directives: the L0 meta-rule must reject each.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Clean on its own; only the directives below are broken.
pub fn ok() -> u64 {
    // apc-lint: allow(L2)
    // apc-lint: allow(L99) -- no such rule
    // apc-lint: deny(L2) -- not a verb the engine supports
    // apc-lint: allow(L12)
    1
}
