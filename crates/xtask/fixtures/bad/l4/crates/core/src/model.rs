//! A model module whose docs never cite the paper.

/// Documented, but names no section, equation or figure.
pub fn mystery(x: u64) -> u64 {
    x.wrapping_add(1)
}

pub struct Opaque;
