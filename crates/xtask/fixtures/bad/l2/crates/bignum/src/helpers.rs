//! Panicking library paths: L2 must catch all three forms.

/// Unchecked unwrap.
pub fn div(a: u64, b: u64) -> u64 {
    a.checked_div(b).unwrap()
}

/// Unchecked expect.
pub fn head(v: &[u64]) -> u64 {
    *v.first().expect("nonempty")
}

/// Explicit panic.
pub fn boom() {
    panic!("no");
}
