//! Sleep-polling traps: L7 must flag `thread::sleep` on serving paths.

use std::sync::mpsc::Receiver;
use std::time::Duration;

/// The classic poll loop: wakes on a timer instead of the event.
pub fn poll_for_work(rx: &Receiver<u64>) -> u64 {
    loop {
        if let Ok(job) = rx.try_recv() {
            return job;
        }
        std::thread::sleep(Duration::from_millis(10));
    }
}

/// Imported form is the same trap.
pub fn backoff() {
    use std::thread;
    thread::sleep(Duration::from_micros(50));
}

/// Justified waits are allowed.
pub fn settle() {
    // apc-lint: allow(L7) -- hardware settle time mandated by the bring-up spec
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    /// Tests may pace themselves with real sleeps.
    #[test]
    fn tests_are_exempt() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
