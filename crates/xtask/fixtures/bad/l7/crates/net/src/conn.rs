//! Sleep-polling traps on the network layer: L7 covers `crates/net`
//! library paths the same way it covers `crates/serve` — a connection
//! worker waits on the accept channel or on a socket read timeout,
//! never on a timer.

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Duration;

/// Shutdown-polling by timer instead of by read timeout: the trap.
pub fn wait_for_drain(flag: &AtomicBool) {
    while !flag.load(Ordering::Acquire) {
        std::thread::sleep(Duration::from_millis(5));
    }
}

/// Retry backoff between connect attempts is the same trap.
pub fn reconnect_backoff() {
    use std::thread;
    thread::sleep(Duration::from_millis(100));
}

/// Justified waits are allowed.
pub fn linger_before_close() {
    // apc-lint: allow(L7) -- deliberate FIN linger required by the peer's stack
    std::thread::sleep(Duration::from_millis(1));
}

#[cfg(test)]
mod tests {
    /// Tests may pace themselves with real sleeps.
    #[test]
    fn tests_are_exempt() {
        std::thread::sleep(std::time::Duration::from_millis(1));
    }
}
