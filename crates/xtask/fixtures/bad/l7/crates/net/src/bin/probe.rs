//! Binary targets under `crates/net` are *not* L7 scope: a CLI probe
//! pacing its own retries is operator tooling, not the event-driven
//! server path. Nothing in this file may be flagged.

fn main() {
    loop {
        println!("probing...");
        std::thread::sleep(std::time::Duration::from_secs(1));
    }
}
