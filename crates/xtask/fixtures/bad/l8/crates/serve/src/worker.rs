//! Poison-propagation traps: L8 must flag bare lock unwraps.

use std::collections::VecDeque;
use std::sync::{Mutex, PoisonError};

/// The classic cascade: one tenant's panic poisons the queue mutex and
/// this unwrap takes every later caller down with it.
pub fn pop_bare(q: &Mutex<VecDeque<u64>>) -> Option<u64> {
    q.lock().unwrap().pop_front() // apc-lint: allow(L2) -- fixture isolates L8
}

/// An expect message does not make the cascade any better.
pub fn depth_bare(q: &Mutex<VecDeque<u64>>) -> usize {
    q.lock().expect("queue lock").len() // apc-lint: allow(L2) -- fixture isolates L8
}

/// Justified escapes stay available (both rules waived with reasons).
pub fn pop_waived(q: &Mutex<VecDeque<u64>>) -> Option<u64> {
    // apc-lint: allow(L8,L2) -- init-only path, runs before any other thread exists
    q.lock().unwrap().pop_front()
}

/// The idiom L8 steers to: single-step transitions keep the data
/// consistent, so a poisoned guard is still safe to enter.
pub fn pop_recovering(q: &Mutex<VecDeque<u64>>) -> Option<u64> {
    q.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests may unwrap locks freely.
    #[test]
    fn tests_are_exempt() {
        let q = Mutex::new(VecDeque::from([1u64]));
        assert_eq!(q.lock().unwrap().pop_front(), Some(1));
    }
}
