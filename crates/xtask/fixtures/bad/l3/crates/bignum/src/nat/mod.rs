//! Bare narrowing casts in a kernel path: L3 must fire per line.

/// Silently truncates.
pub fn lo(x: u64) -> u32 {
    x as u32
}

/// Platform-width truncation.
pub fn idx(x: u64) -> usize {
    x as usize
}
