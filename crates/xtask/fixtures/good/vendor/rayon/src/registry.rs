//! Fixture pool file: the clean side of L12's vendor/rayon coverage —
//! gate/park flags on Acquire/Release, plus one justified Relaxed probe.

use std::sync::atomic::{AtomicBool, Ordering};

/// Termination gate for a miniature registry.
pub struct Registry {
    terminate: AtomicBool,
}

impl Registry {
    /// Release store so exiting workers observe everything published
    /// before the shutdown request.
    pub fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
    }

    /// Acquire load pairs with the Release store above.
    pub fn terminated(&self) -> bool {
        self.terminate.load(Ordering::Acquire)
    }

    /// An advisory probe may stay Relaxed with a stated reason.
    pub fn terminate_hint(&self) -> bool {
        // apc-lint: allow(L12) -- advisory fast path; callers re-check with Acquire under the sleep lock
        self.terminate.load(Ordering::Relaxed)
    }
}
