//! Fixture service file: the clean side of the flow rules — consistent
//! lock order (L9), single-domain metric flows (L10), and disciplined
//! atomic orderings (L12).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// Minimal histogram stand-in so record sites look like the real ones.
pub struct Hist {
    total: AtomicU64,
}

impl Hist {
    /// Folds one sample into the running total.
    pub fn record(&self, value: u64) {
        self.total.fetch_add(value, Ordering::Relaxed);
    }
}

/// Service state: two locks, a gate flag, a statistic flag, and one
/// histogram per time domain.
pub struct Service {
    alpha: Mutex<u64>,
    beta: Mutex<u64>,
    running: AtomicBool,
    seen_work: AtomicBool,
    queue_ns: Hist,
    service_cycles: Hist,
}

impl Service {
    /// Takes alpha, then beta — the canonical order.
    pub fn sweep(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        *a ^ *b
    }

    /// Also alpha, then beta: a second site in the same order is fine.
    pub fn drain(&self) -> u64 {
        let a = self.alpha.lock().unwrap_or_else(PoisonError::into_inner);
        let b = self.beta.lock().unwrap_or_else(PoisonError::into_inner);
        *a | *b
    }

    /// Release store on a gate flag publishes prior writes.
    pub fn start(&self) {
        self.running.store(true, Ordering::Release);
    }

    /// Acquire load pairs with the Release store above.
    pub fn is_running(&self) -> bool {
        self.running.load(Ordering::Acquire)
    }

    /// A boolean *statistic* may stay Relaxed with a stated reason.
    pub fn note_work_seen(&self) {
        // apc-lint: allow(L12) -- boolean statistic only read by debug dumps
        self.seen_work.store(true, Ordering::Relaxed);
    }

    /// Touching both domains in one function is fine as long as each
    /// value flows into its own domain.
    pub fn record_completion(&self, service_cycles: u64, queue_ns: u64) {
        self.service_cycles.record(service_cycles);
        self.queue_ns.record(queue_ns);
    }
}
