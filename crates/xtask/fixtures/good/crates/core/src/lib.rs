//! Fixture model crate — every public item cites the paper, as the real
//! `cambricon-p` crate must (Eq. 1, §V).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Saturating count conversion for the Eq. 1 limb vectors.
pub fn checked_count(x: u64) -> usize {
    usize::try_from(x).unwrap_or(usize::MAX)
}

/// The section width of the carry-parallel gather (Fig. 7c).
pub const SECTION_BITS: u32 = 32;
