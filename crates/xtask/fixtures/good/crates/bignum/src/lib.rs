//! Fixture bignum crate.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod nat;
