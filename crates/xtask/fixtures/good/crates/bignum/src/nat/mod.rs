//! Fixture kernel file: narrowing stays explicit (L3's good side).

/// Explicit, checked narrowing — the preferred form.
pub fn low_word(x: u64) -> u32 {
    u32::try_from(x & 0xFFFF_FFFF).unwrap_or(0)
}

/// A justified bare cast, silenced by the escape hatch.
pub fn masked(x: u64) -> u32 {
    // apc-lint: allow(L3) -- fixture: value masked to 32 bits on this line
    (x & 0xFFFF_FFFF) as u32
}

/// The machine word, mirroring the real `limb::Limb`.
pub type Limb = u64;

/// Explicit wrapping arithmetic — L11's good side.
pub fn accumulate(acc: Limb, step: Limb) -> Limb {
    acc.wrapping_add(step)
}

/// A justified bare op, silenced by the escape hatch.
pub fn double_unchecked(acc: Limb) -> Limb {
    // apc-lint: allow(L11) -- fixture: caller proves acc stays below 2^63
    acc + acc
}
