#![forbid(unsafe_code)]
#![warn(missing_docs)]
//! Fixture network file: the clean side of the net-layer rules — a
//! connection worker that drains without sleeping (L7: the socket read
//! *timeout* is the poll), recovers poisoned locks (L8), and uses
//! Acquire/Release on its gate flag with Relaxed only on statistics
//! (L12).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::{Mutex, PoisonError};

/// Listener state shared with connection workers.
pub struct Listener {
    /// Shutdown gate — not a statistic, so Acquire/Release.
    draining: AtomicBool,
    /// Frames seen: a statistic counter, Relaxed is right.
    frames: AtomicU64,
    /// The accept hand-off queue.
    queue: Mutex<Vec<u64>>,
}

impl Listener {
    /// Begins the drain; workers observe it at their next timeout.
    pub fn begin_drain(&self) {
        self.draining.store(true, Ordering::Release);
    }

    /// One statistic tick.
    pub fn count_frame(&self) {
        self.frames.fetch_add(1, Ordering::Relaxed);
    }

    /// Pops queued work, recovering a poisoned queue (single-step
    /// transitions keep it consistent).
    pub fn pop(&self) -> Option<u64> {
        let mut q = self.queue.lock().unwrap_or_else(PoisonError::into_inner);
        q.pop()
    }

    /// Blocks on the channel — the event itself, never a timer. A
    /// disconnect or an observed drain gate ends the worker.
    pub fn worker_loop(&self, rx: &Receiver<u64>) -> u64 {
        let mut served = 0;
        while let Ok(conn) = rx.recv() {
            if self.draining.load(Ordering::Acquire) {
                return served;
            }
            served += conn;
        }
        served
    }
}
