//! Fixture facade crate: carries the mandatory crate-root attributes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// Adds one, panic-free.
pub fn add_one(x: u64) -> u64 {
    x.wrapping_add(1)
}

/// Exercises the L2 escape hatch: the directive below must be honored.
pub fn answer() -> u64 {
    // apc-lint: allow(L2) -- fixture: proves a justified allow silences L2
    "42".parse().unwrap()
}
