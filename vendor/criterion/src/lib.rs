//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmarking harness.
//!
//! The workspace builds with no crates.io access, so this crate provides
//! just enough API for the `crates/bench` targets to compile and produce
//! useful wall-clock numbers. Differences from real criterion:
//!
//! - no statistical analysis, outlier detection, or HTML reports — each
//!   benchmark runs a short calibrated loop and prints mean ns/iter;
//! - `cargo test` runs the bench binaries (they are `harness = false`);
//!   to keep the test gate fast they **skip all measurement** unless the
//!   `APC_BENCH=1` environment variable is set.
//!
//! Run `APC_BENCH=1 cargo bench` for real numbers.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

/// Re-export point mirroring `criterion::measurement`.
pub mod measurement {
    /// Wall-clock measurement marker (the only measurement the stub has).
    #[derive(Debug, Clone, Copy)]
    pub struct WallTime;
}

use measurement::WallTime;

/// Prevents the optimizer from deleting a benchmarked computation.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Identifier for one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// `name/parameter`, like criterion's two-part IDs.
    pub fn new(name: impl Into<String>, parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An ID that is only the parameter (for single-function groups).
    pub fn from_parameter(parameter: impl std::fmt::Display) -> Self {
        BenchmarkId {
            name: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { name: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { name: s }
    }
}

/// Timing loop handle passed to benchmark closures.
#[derive(Debug)]
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `routine`, recording mean wall-clock time per iteration.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// A named set of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup<'a, M = WallTime> {
    name: String,
    sample_size: u64,
    _criterion: &'a Criterion,
    _measurement: std::marker::PhantomData<M>,
}

impl<M> BenchmarkGroup<'_, M> {
    /// Number of timed iterations per benchmark (criterion: samples).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n as u64;
        self
    }

    /// Accepted for API parity; the stub has no warm-up phase.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API parity; the stub runs a fixed iteration count.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Runs one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run(id.into(), |b| f(b));
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        self.run(id.into(), |b| f(b, input));
        self
    }

    fn run(&mut self, id: BenchmarkId, mut f: impl FnMut(&mut Bencher)) {
        let mut bencher = Bencher {
            iters: self.sample_size.max(1),
            elapsed: Duration::ZERO,
        };
        f(&mut bencher);
        let per_iter = bencher.elapsed.as_nanos() / u128::from(bencher.iters.max(1));
        println!(
            "bench {}/{}: {} iters, mean {} ns/iter",
            self.name, id.name, bencher.iters, per_iter
        );
    }

    /// Ends the group (no-op in the stub; kept for API parity).
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_, WallTime> {
        BenchmarkGroup {
            name: name.into(),
            sample_size: 10,
            _criterion: self,
            _measurement: std::marker::PhantomData,
        }
    }

    /// Runs a standalone benchmark outside any group.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.benchmark_group("default").bench_function(id, |b| f(b));
        self
    }
}

/// Whether bench execution is enabled (`APC_BENCH=1`).
pub fn benches_enabled() -> bool {
    std::env::var("APC_BENCH").map(|v| v == "1").unwrap_or(false)
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Declares the bench `main`, mirroring criterion's macro.
///
/// The generated main is a no-op unless `APC_BENCH=1`, so that `cargo
/// test` (which executes `harness = false` bench binaries) stays fast.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            if !$crate::benches_enabled() {
                println!("criterion stub: set APC_BENCH=1 to run benchmarks");
                return;
            }
            $( $group(); )+
        }
    };
}
