//! Collection strategies (`prop::collection::vec`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;
use std::ops::{Range, RangeInclusive};

/// An inclusive length range for collection strategies.
#[derive(Debug, Clone, Copy)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        SizeRange {
            min: n,
            max_inclusive: n,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        SizeRange {
            min: r.start,
            max_inclusive: r.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        assert!(r.start() <= r.end(), "empty size range");
        SizeRange {
            min: *r.start(),
            max_inclusive: *r.end(),
        }
    }
}

/// Strategy for `Vec<T>` with element strategy `S` and a length range.
#[derive(Debug, Clone)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;
    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = (self.size.max_inclusive - self.size.min) as u64 + 1;
        let len = self.size.min + usize::try_from(rng.below(span)).unwrap_or(0);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}

/// Generates `Vec`s whose length lies in `size` and whose elements come
/// from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}
