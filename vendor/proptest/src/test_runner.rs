//! Minimal test-runner plumbing: configuration, case errors, and the
//! deterministic per-case RNG.

/// Configuration accepted by `#![proptest_config(..)]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of successful cases required for the property to pass.
    pub cases: u32,
}

impl ProptestConfig {
    /// A configuration running `cases` cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        // Real proptest defaults to 256; the stub keeps CI latency down.
        ProptestConfig { cases: 64 }
    }
}

/// Why a single property case did not succeed.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// The case was vetoed by `prop_assume!`; it is re-drawn, not failed.
    Reject(String),
    /// A `prop_assert*!` failed; the whole property fails.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure error.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection error.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Deterministic per-case generator (xoshiro256**, seeded from the test
/// name and case index so every run draws identical inputs).
#[derive(Debug, Clone)]
pub struct TestRng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl TestRng {
    /// RNG for case `case` of the property named `name`.
    pub fn for_case(name: &str, case: u32) -> Self {
        // FNV-1a over the test name, mixed with the case index.
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        let mut seed = h ^ (u64::from(case).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        TestRng {
            s: [
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
                splitmix64(&mut seed),
            ],
        }
    }

    /// The next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[0, bound)`; `bound` must be nonzero.
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "below(0)");
        self.next_u64() % bound
    }
}

/// Kept for API parity with real proptest; the stub's `proptest!` macro
/// drives cases directly and only uses this type in signatures.
#[derive(Debug, Clone)]
pub struct TestRunner {
    /// The active configuration.
    pub config: ProptestConfig,
}

impl TestRunner {
    /// Builds a runner with the given configuration.
    pub fn new(config: ProptestConfig) -> Self {
        TestRunner { config }
    }
}
