//! `any::<T>()` — strategies for primitive types.

use crate::strategy::{AnyStrategy, Strategy};
use crate::test_runner::TestRng;
use std::marker::PhantomData;

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Arbitrary for i128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        u128::arbitrary(rng) as i128
    }
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl<T: Arbitrary> Strategy for AnyStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The strategy generating any value of `T`.
pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
    AnyStrategy {
        _marker: PhantomData,
    }
}
