//! Numeric strategy helpers (range strategies live in [`crate::strategy`]
//! as inherent `Range`/`RangeInclusive` impls; this module exists for path
//! parity with real proptest).
