//! The [`Strategy`] trait and generic combinators.

use crate::test_runner::TestRng;
use std::marker::PhantomData;
use std::ops::{Range, RangeFrom, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike real proptest there is no value tree / shrinking: a strategy is
/// just a deterministic function of the RNG stream.
pub trait Strategy {
    /// The type of values this strategy produces.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }

    /// Filters generated values; draws again (bounded) when `f` rejects.
    fn prop_filter<F>(self, _whence: &'static str, f: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy producing a single fixed value (cloned per case).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// See [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
#[derive(Debug, Clone)]
pub struct Filter<S, F> {
    pub(crate) inner: S,
    pub(crate) f: F,
}

impl<S, F> Strategy for Filter<S, F>
where
    S: Strategy,
    F: Fn(&S::Value) -> bool,
{
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1024 {
            let v = self.inner.generate(rng);
            if (self.f)(&v) {
                return v;
            }
        }
        panic!("prop_filter rejected 1024 consecutive draws");
    }
}

/// Strategy for any value of `T` (see [`crate::arbitrary::any`]).
#[derive(Debug, Clone)]
pub struct AnyStrategy<T> {
    pub(crate) _marker: PhantomData<T>,
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let span = (self.end as i128) - (self.start as i128);
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                ((self.start as i128) + draw) as $t
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty range strategy");
                let span = (hi as i128) - (lo as i128) + 1;
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                ((lo as i128) + draw) as $t
            }
        }
        impl Strategy for RangeFrom<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let lo = self.start as i128;
                let hi = <$t>::MAX as i128;
                let span = hi - lo + 1;
                let draw = (rng.next_u64() as i128).rem_euclid(span);
                (lo + draw) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);
