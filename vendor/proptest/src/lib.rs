//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! The container this workspace builds in has no crates.io access, so the
//! property-testing surface the test suites use is reimplemented here on a
//! deterministic PRNG. Compared to real proptest the stub:
//!
//! - generates cases from a **fixed per-test seed** (derived from the test
//!   name), so failures are reproducible run-to-run;
//! - does **not shrink** failing inputs — the failing values are printed
//!   as-is;
//! - supports exactly the combinators used in-tree: [`any`],
//!   [`collection::vec`], range strategies, tuple strategies,
//!   [`Strategy::prop_map`], [`strategy::Just`], `proptest!`,
//!   `prop_assert!`, `prop_assert_eq!`, `prop_assert_ne!` and
//!   `prop_assume!`.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod num;
pub mod strategy;
pub mod test_runner;

pub use arbitrary::any;

/// One-stop imports, mirroring `proptest::prelude::*`.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::{TestCaseError, TestRunner};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
    /// Alias of the crate root so `prop::collection::vec(..)` resolves.
    pub use crate as prop;
}

pub use test_runner::ProptestConfig;

/// Defines property tests.
///
/// Supports the in-tree shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_prop(a in arb_nat(40), b in 0u64..100) { ... }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_cases! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_cases! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_cases {
    (($cfg:expr); $( $(#[$meta:meta])* fn $name:ident ( $($pat:pat in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rejected: u32 = 0;
                let mut case: u32 = 0;
                while case < config.cases {
                    let mut __rng = $crate::test_runner::TestRng::for_case(
                        stringify!($name),
                        case + rejected,
                    );
                    $(let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);)*
                    let __outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    match __outcome {
                        ::std::result::Result::Ok(()) => case += 1,
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {
                            rejected += 1;
                            assert!(
                                rejected < config.cases.saturating_mul(16).max(1024),
                                "proptest stub: too many rejected cases in {}",
                                stringify!($name),
                            );
                        }
                        ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                            panic!(
                                "proptest case {} of {} failed: {}",
                                case, stringify!($name), msg
                            );
                        }
                    }
                }
            }
        )*
    };
}

/// Fails the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)+)),
            );
        }
    };
}

/// Fails the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l == *r,
            "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
            stringify!($left), stringify!($right), l, r
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(*l == *r, $($fmt)+);
    }};
}

/// Fails the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&($left), &($right));
        $crate::prop_assert!(
            *l != *r,
            "assertion failed: `{} != {}`\n  both: {:?}",
            stringify!($left), stringify!($right), l
        );
    }};
}

/// Rejects the current case (it is re-drawn, not counted) unless `cond`.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::reject(stringify!($cond)),
            );
        }
    };
}
