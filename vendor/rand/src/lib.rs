//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! This workspace must build with no network access (the container cannot
//! reach crates.io), so the handful of `rand 0.8` APIs the reproduction
//! actually uses are reimplemented here on top of a deterministic
//! xoshiro256** generator. The surface is intentionally tiny:
//!
//! - [`Rng`]: `gen`, `gen_range`, `gen_bool`, `fill`
//! - [`SeedableRng::seed_from_u64`]
//! - [`rngs::StdRng`]
//!
//! Streams are deterministic per seed but are **not** the same streams as
//! the real `rand` crate; every consumer in this workspace seeds
//! explicitly, so only reproducibility (not stream compatibility) matters.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level generator interface: a source of uniformly random `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore`.
pub trait Standard: Sized {
    /// Draws one uniformly distributed value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for i128 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::sample(rng) as i128
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniformly random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Ranges that `Rng::gen_range` can sample from.
pub trait SampleRange {
    /// The element type produced by sampling.
    type Output;
    /// Draws one value uniformly from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> Self::Output;
}

/// Integers with a uniform range sampler (rejection-free Lemire-style
/// reduction is overkill here; modulo bias is irrelevant for test data,
/// but we still use widening multiply to keep it cheap and uniform-ish).
pub trait UniformInt: Copy {
    /// Sample uniformly from `[low, high)`; `high > low` must hold.
    fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
    /// The largest representable value (for inclusive-range widening).
    fn checked_add_one(self) -> Option<Self>;
}

macro_rules! impl_uniform_int {
    ($($t:ty => $wide:ty),*) => {$(
        impl UniformInt for $t {
            fn sample_exclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                assert!(low < high, "gen_range called with empty range");
                let span = (high as $wide).wrapping_sub(low as $wide) as u128;
                let draw = (u128::from(rng.next_u64())) % span;
                ((low as $wide).wrapping_add(draw as $wide)) as $t
            }
            fn checked_add_one(self) -> Option<Self> {
                self.checked_add(1)
            }
        }
    )*};
}
impl_uniform_int!(
    u8 => u64, u16 => u64, u32 => u64, u64 => u64, usize => u64,
    i8 => i64, i16 => i64, i32 => i64, i64 => i64, isize => i64
);

impl<T: UniformInt> SampleRange for Range<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(self.start, self.end, rng)
    }
}

impl<T: UniformInt + PartialEq> SampleRange for RangeInclusive<T> {
    type Output = T;
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = self.into_inner();
        match end.checked_add_one() {
            Some(excl) => T::sample_exclusive(start, excl, rng),
            // end == MAX: fold the single overflow case back onto `end`.
            None => {
                if start == end {
                    return start;
                }
                T::sample_exclusive(start, end, rng)
            }
        }
    }
}

/// User-facing generator extension methods (the `rand 0.8` names).
pub trait Rng: RngCore {
    /// Draws a uniformly distributed value of type `T`.
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }

    /// Fills `dest` with uniformly random bytes.
    fn fill(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generators that can be constructed from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a pure function of `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// A fresh generator seeded from the system clock (mirrors
/// `rand::thread_rng`, minus the thread-local caching).
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    <rngs::StdRng as SeedableRng>::seed_from_u64(nanos)
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator standing in for `rand`'s
    /// `StdRng`. Not cryptographically secure; fine for test data and
    /// reproducible workloads.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            StdRng {
                s: [
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                    splitmix64(&mut sm),
                ],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..32 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(3usize..=5);
            assert!((3..=5).contains(&w));
            let s = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }

    #[test]
    fn works_through_mut_ref() {
        fn draw<R: Rng>(rng: &mut R) -> u64 {
            rng.gen_range(0..100u64)
        }
        let mut rng = StdRng::seed_from_u64(9);
        let _ = draw(&mut rng);
        let _ = draw(&mut &mut rng);
    }
}
