//! The completion latch a `join`/`install` caller waits on.
//!
//! A [`Latch`] is a one-shot gate: the executor of a stolen job sets it
//! once (after publishing the job's result), and the owner probes it.
//! The flag itself lives in the job's stack frame; everything needed to
//! *wake* sleepers lives in the [`Registry`](crate::registry::Registry),
//! which the latch keeps alive through an `Arc`. `set` clones that `Arc`
//! **before** the `Release` store — the instant the store lands, the
//! waiting frame may return and pop the latch's memory, so the setter
//! must not touch `self` afterwards.

use crate::registry::Registry;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// One-shot completion gate for a queued job.
pub(crate) struct Latch {
    /// Completion gate: `Release` store in [`Latch::set`] pairs with the
    /// `Acquire` load in [`Latch::probe`], publishing the job result
    /// written just before the set.
    set: AtomicBool,
    registry: Arc<Registry>,
}

impl Latch {
    pub(crate) fn new(registry: Arc<Registry>) -> Latch {
        Latch {
            set: AtomicBool::new(false),
            registry,
        }
    }

    /// Whether the latch has been set. `Acquire`: a `true` observation
    /// also makes the job's result write visible.
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::Acquire)
    }

    /// Sets the latch and wakes any sleeping threads.
    ///
    /// Called by whichever thread executed the job, exactly once. `self`
    /// may be deallocated by the owner the moment the store is visible,
    /// so the registry handle is cloned out first and the wakeup goes
    /// through that clone only.
    pub(crate) fn set(&self) {
        let registry = Arc::clone(&self.registry);
        self.set.store(true, Ordering::Release);
        // `self` must not be used beyond this point.
        registry.notify_event();
    }
}
