//! The worker registry: deques, stealing, parking, and the global pool.
//!
//! Layout mirrors rayon-core at a much smaller scale:
//!
//! - one double-ended queue per worker, guarded by its own `Mutex` —
//!   the owner pushes and pops at the **back** (LIFO, keeps the working
//!   set cache-hot and makes `join` pop back exactly the job it pushed),
//!   thieves steal from the **front** (FIFO, takes the oldest/biggest
//!   pending subtree);
//! - a shared **injector** queue for jobs arriving from threads outside
//!   the pool;
//! - a `Mutex`+`Condvar` **sleep** gate with an event counter: every
//!   push and every latch set bumps the counter and notifies, so an idle
//!   worker can park without lost-wakeup races (it snapshots the counter
//!   *before* scanning for work and only sleeps while the counter is
//!   unchanged).
//!
//! Steal order for worker *i*: own deque back → injector front → deques
//! `i+1, i+2, …` front (round-robin). A thread waiting on a latch keeps
//! stealing by the same order instead of blocking, which is what lets
//! nested `join`s run to completion on a bounded pool without deadlock.

use crate::job::JobRef;
use crate::latch::Latch;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, PoisonError};
use std::time::Duration;

/// Fallback park interval: waiters also wake on this timer, so even a
/// (hypothetical) missed notification cannot strand a thread for good.
const PARK_TIMEOUT: Duration = Duration::from_millis(10);

/// Locks `m`, recovering the guard from a poisoned mutex. Jobs run under
/// `catch_unwind`, so a poisoned queue can only arise from a panic in the
/// pool machinery itself; the queue contents remain structurally valid.
fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sleep gate shared by all threads that touch one registry.
struct Sleep {
    /// Event counter: bumped on every push / latch set / termination.
    events: Mutex<u64>,
    cond: Condvar,
}

/// One pool instance: worker deques + injector + sleep machinery.
pub(crate) struct Registry {
    deques: Vec<Mutex<VecDeque<JobRef>>>,
    injector: Mutex<VecDeque<JobRef>>,
    sleep: Sleep,
    /// Shutdown gate (local pools only; the global pool lives for the
    /// process). Release store in [`Registry::terminate`] pairs with the
    /// Acquire load in [`Registry::terminated`] so exiting workers also
    /// observe everything published before the shutdown request.
    terminate: AtomicBool,
}

impl Registry {
    /// Builds a registry with `n_threads` workers and spawns them.
    /// Returns the join handles so local pools can shut down cleanly;
    /// the global pool drops them (workers live until process exit).
    pub(crate) fn spawn(
        n_threads: usize,
    ) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let n = n_threads.max(1);
        let registry = Arc::new(Registry {
            deques: (0..n).map(|_| Mutex::new(VecDeque::new())).collect(),
            injector: Mutex::new(VecDeque::new()),
            sleep: Sleep {
                events: Mutex::new(0),
                cond: Condvar::new(),
            },
            terminate: AtomicBool::new(false),
        });
        let handles = (0..n)
            .map(|index| {
                let reg = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("apc-rayon-{index}"))
                    .spawn(move || worker_main(reg, index))
                    .expect("spawn rayon worker thread")
            })
            .collect();
        (registry, handles)
    }

    /// Number of worker threads in this registry.
    pub(crate) fn num_threads(&self) -> usize {
        self.deques.len()
    }

    // --- queues -------------------------------------------------------

    /// Enqueues `job`: onto worker `w`'s own deque back when called from
    /// worker `w`, onto the shared injector otherwise; then wakes
    /// sleepers.
    pub(crate) fn push(&self, worker: Option<usize>, job: JobRef) {
        match worker {
            Some(w) => lock(&self.deques[w]).push_back(job),
            None => lock(&self.injector).push_back(job),
        }
        self.notify_event();
    }

    /// Attempts to reclaim a still-unstolen job by identity from the
    /// queue it was pushed to. Used by `join` to run its second closure
    /// inline when no thief took it.
    pub(crate) fn take_by_id(&self, worker: Option<usize>, id: *const ()) -> Option<JobRef> {
        let mut queue = match worker {
            Some(w) => lock(&self.deques[w]),
            None => lock(&self.injector),
        };
        let pos = queue.iter().position(|j| j.id() == id)?;
        queue.remove(pos)
    }

    /// Claims one job: own deque back (LIFO) first for workers, then the
    /// injector front, then the other deques' fronts round-robin.
    fn find_job(&self, thief: Option<usize>) -> Option<JobRef> {
        if let Some(w) = thief {
            if let Some(job) = lock(&self.deques[w]).pop_back() {
                return Some(job);
            }
        }
        if let Some(job) = lock(&self.injector).pop_front() {
            return Some(job);
        }
        let n = self.deques.len();
        let start = thief.map_or(0, |w| w + 1);
        for k in 0..n {
            let i = (start + k) % n;
            if Some(i) == thief {
                continue;
            }
            if let Some(job) = lock(&self.deques[i]).pop_front() {
                return Some(job);
            }
        }
        None
    }

    // --- sleeping -----------------------------------------------------

    /// Bumps the event counter and wakes every sleeper. Called after any
    /// state change a sleeper might be waiting for (push, latch set,
    /// termination).
    pub(crate) fn notify_event(&self) {
        {
            let mut events = lock(&self.sleep.events);
            *events = events.wrapping_add(1);
        }
        self.sleep.cond.notify_all();
    }

    /// Current event count; snapshot *before* scanning for work so a
    /// concurrent push cannot be missed across the scan/park gap.
    fn event_snapshot(&self) -> u64 {
        *lock(&self.sleep.events)
    }

    /// Parks until the event counter moves past `snapshot` (or the
    /// fallback timer fires, or the registry terminates).
    fn park(&self, snapshot: u64) {
        let mut events = lock(&self.sleep.events);
        while *events == snapshot && !self.terminated() {
            let (guard, timeout) = self
                .sleep
                .cond
                .wait_timeout(events, PARK_TIMEOUT)
                .unwrap_or_else(PoisonError::into_inner);
            events = guard;
            if timeout.timed_out() {
                break;
            }
        }
    }

    // --- waiting on latches -------------------------------------------

    /// Work-stealing wait: executes other pool jobs until `latch` sets.
    /// Used by workers (and the worker-path `join`) so a blocked frame
    /// still drives the pool forward — the no-deadlock argument for
    /// nested `join` on a bounded pool.
    pub(crate) fn wait_until(&self, latch: &Latch, thief: Option<usize>) {
        while !latch.probe() {
            let snapshot = self.event_snapshot();
            if let Some(job) = self.find_job(thief) {
                // SAFETY: claimed exclusively from a queue; pointee alive
                // per the latch-before-return protocol.
                unsafe { job.execute() };
                continue;
            }
            if latch.probe() {
                return;
            }
            self.park(snapshot);
        }
    }

    /// Blocking wait for threads outside the pool (`install`, external
    /// `join`): sleeps on the event gate without executing pool jobs, so
    /// installed work runs entirely on pool workers.
    pub(crate) fn wait_until_external(&self, latch: &Latch) {
        while !latch.probe() {
            let snapshot = self.event_snapshot();
            if latch.probe() {
                return;
            }
            self.park(snapshot);
        }
    }

    // --- shutdown -----------------------------------------------------

    /// Requests worker exit (after the queues drain) and wakes sleepers.
    pub(crate) fn terminate(&self) {
        self.terminate.store(true, Ordering::Release);
        self.notify_event();
    }

    fn terminated(&self) -> bool {
        self.terminate.load(Ordering::Acquire)
    }
}

/// Worker thread body: claim work, run it, park when idle, exit when the
/// registry terminates and the queues are dry.
fn worker_main(registry: Arc<Registry>, index: usize) {
    WORKER.with(|ctx| {
        *ctx.borrow_mut() = Some(WorkerCtx {
            registry: Arc::clone(&registry),
            index,
        });
    });
    loop {
        let snapshot = registry.event_snapshot();
        if let Some(job) = registry.find_job(Some(index)) {
            // SAFETY: claimed exclusively from a queue; pointee alive per
            // the latch-before-return protocol. Panics are contained by
            // the job's own catch_unwind, so the worker never unwinds.
            unsafe { job.execute() };
            continue;
        }
        if registry.terminated() {
            break;
        }
        registry.park(snapshot);
    }
    WORKER.with(|ctx| ctx.borrow_mut().take());
}

/// Which registry (and worker slot) the current thread belongs to.
struct WorkerCtx {
    registry: Arc<Registry>,
    index: usize,
}

thread_local! {
    static WORKER: RefCell<Option<WorkerCtx>> = const { RefCell::new(None) };
}

/// The current thread's registry and worker index, if it is a pool
/// worker.
pub(crate) fn current_ctx() -> Option<(Arc<Registry>, usize)> {
    WORKER.with(|ctx| {
        ctx.borrow()
            .as_ref()
            .map(|c| (Arc::clone(&c.registry), c.index))
    })
}

// --- the global pool --------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide pool, spawned on first use. Its workers are detached
/// (the process owns them); local [`crate::ThreadPool`]s are the
/// shutdown-able alternative for tests.
pub(crate) fn global_registry() -> Arc<Registry> {
    Arc::clone(GLOBAL.get_or_init(|| {
        let (registry, handles) = Registry::spawn(global_thread_count());
        drop(handles);
        registry
    }))
}

/// Worker count for the global pool: the `APC_THREADS` env override
/// (clamped to 1..=1024) when set and parseable, else
/// `available_parallelism`. Read once — the pool size never changes
/// after the first query.
pub(crate) fn global_thread_count() -> usize {
    static COUNT: OnceLock<usize> = OnceLock::new();
    *COUNT.get_or_init(|| {
        if let Some(n) = std::env::var("APC_THREADS")
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
        {
            return n.clamp(1, 1024);
        }
        std::thread::available_parallelism()
            .map(std::num::NonZeroUsize::get)
            .unwrap_or(1)
    })
}
