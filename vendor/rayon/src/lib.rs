//! Offline std-only stand-in for the `rayon` crate (see vendor/README.md).
//!
//! Implements the slice of rayon's API this workspace uses — the
//! fork-join primitive [`join`], [`current_num_threads`], and explicit
//! [`ThreadPool`]s — on a real work-stealing pool:
//!
//! - a lazily-initialized global registry of `available_parallelism`
//!   workers (override with the `APC_THREADS` env var), spawned on the
//!   first piece of parallel work;
//! - per-worker LIFO deques plus a shared injector, each behind its own
//!   `Mutex` (a lock-per-deque design rather than lock-free Chase-Lev:
//!   the in-tree callers split work down to coarse grains, so queue
//!   operations are rare and the simpler protocol is easy to prove);
//! - [`join`] runs its first closure inline and exposes the second for
//!   stealing, reclaiming it when no thief took it; a caller waiting for
//!   a stolen job steals other work meanwhile, so nested joins cannot
//!   deadlock a bounded pool;
//! - idle workers park on a `Condvar` event gate and are woken by
//!   pushes;
//! - panics in either closure propagate to the `join` caller, like real
//!   rayon.
//!
//! The API shapes mirror real rayon, so restoring the real crate in
//! `[workspace.dependencies]` requires no source changes elsewhere.
//! ([`ThreadPool::shutdown`] is a stub-only extra — real rayon shuts a
//! pool down on drop, which this crate also does.)
//!
//! Unlike every other crate in this workspace the pool uses `unsafe`
//! (confined to `job.rs` plus the `execute`/erasure call sites): `join`
//! hands a borrowed closure to another thread, which fundamentally
//! requires lifetime erasure, exactly as in rayon-core. The soundness
//! protocol is documented in [`job`]'s module docs; the flag atomics
//! follow the workspace L12 rule (Acquire/Release on gates) and the
//! vendored pool is included in that lint's scope.

mod job;
mod latch;
mod registry;

use job::{JobResult, StackJob};
use latch::Latch;
use registry::Registry;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;

/// Runs `oper_a` and `oper_b` potentially in parallel and returns both
/// results. Panics from either closure propagate to the caller, like real
/// rayon's `join`.
///
/// `oper_a` runs inline on the calling thread; `oper_b` is published for
/// stealing (to this thread's own deque when it is a pool worker, to the
/// global pool's injector otherwise) and reclaimed inline if no other
/// thread took it.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let (reg, worker) = match registry::current_ctx() {
        Some((reg, index)) => (reg, Some(index)),
        None => (registry::global_registry(), None),
    };
    join_in(&reg, worker, oper_a, oper_b)
}

/// [`join`] against an explicit registry/worker slot.
fn join_in<A, B, RA, RB>(reg: &Arc<Registry>, worker: Option<usize>, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let job_b = StackJob::new(oper_b, Latch::new(Arc::clone(reg)));
    // SAFETY: `job_b` stays alive in this frame until its latch is
    // observed set below, and the ref is enqueued exactly once.
    let job_b_ref = unsafe { job_b.as_job_ref() };
    let id = job_b_ref.id();
    reg.push(worker, job_b_ref);

    // Run the first closure inline. A panic here must still wait for the
    // (possibly stolen) second job before unwinding past its stack slot.
    let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));

    if let Some(job) = reg.take_by_id(worker, id) {
        // No thief took it — run the second closure inline too.
        // SAFETY: reclaimed exclusively; pointee is this frame's own job.
        unsafe { job.execute() };
    } else if worker.is_some() {
        reg.wait_until(&job_b.latch, worker);
    } else {
        reg.wait_until_external(&job_b.latch);
    }
    debug_assert!(job_b.latch.probe(), "join resumed before its job finished");
    // SAFETY: the latch was observed set, so the result is published and
    // this (owning) frame holds the only reference.
    let result_b = unsafe { job_b.take_result() };

    match result_a {
        Err(payload) => panic::resume_unwind(payload),
        Ok(ra) => match result_b {
            JobResult::Ok(rb) => (ra, rb),
            JobResult::Panic(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("latch set without a job result"),
        },
    }
}

/// Number of threads in the current thread's pool: the enclosing
/// [`ThreadPool`]'s size on a worker thread, the global pool's size
/// otherwise (querying does not spawn the global pool).
pub fn current_num_threads() -> usize {
    match registry::current_ctx() {
        Some((reg, _)) => reg.num_threads(),
        None => registry::global_thread_count(),
    }
}

/// Builder for an explicit, locally-owned [`ThreadPool`] (mirrors
/// rayon's builder surface for the options this workspace uses).
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: usize,
}

impl ThreadPoolBuilder {
    /// A builder with default settings (`num_threads` = the global
    /// pool's configured size).
    pub fn new() -> ThreadPoolBuilder {
        ThreadPoolBuilder::default()
    }

    /// Sets the worker count; `0` means the global default.
    pub fn num_threads(mut self, num_threads: usize) -> ThreadPoolBuilder {
        self.num_threads = num_threads;
        self
    }

    /// Spawns the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        let n = if self.num_threads == 0 {
            registry::global_thread_count()
        } else {
            self.num_threads
        };
        let (registry, handles) = Registry::spawn(n);
        Ok(ThreadPool { registry, handles })
    }
}

/// Error from [`ThreadPoolBuilder::build`]. Pool construction in this
/// stand-in only fails by panicking on thread-spawn failure, but the
/// `Result` shape mirrors real rayon so call sites stay portable.
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "failed to build thread pool")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// An explicitly-owned worker pool, independent of the global one.
///
/// Used by tests that need a deterministic worker count regardless of
/// host cores or `APC_THREADS`, and shut down (joining its threads) on
/// [`ThreadPool::shutdown`] or drop so `cargo test`'s own concurrency
/// never observes leaked workers.
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Number of worker threads in this pool.
    pub fn current_num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `op` inside the pool and returns its result; `join`s (and
    /// everything built on them, like `apc_bignum::par`) reached from
    /// `op` use this pool's workers. The calling thread blocks without
    /// executing pool work, so `op` runs entirely on the pool.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R + Send,
        R: Send,
    {
        if let Some((reg, _)) = registry::current_ctx() {
            if Arc::ptr_eq(&reg, &self.registry) {
                // Already on one of our workers: run directly.
                return op();
            }
        }
        let job = StackJob::new(op, Latch::new(Arc::clone(&self.registry)));
        // SAFETY: `job` outlives the wait below; enqueued exactly once.
        let job_ref = unsafe { job.as_job_ref() };
        self.registry.push(None, job_ref);
        self.registry.wait_until_external(&job.latch);
        // SAFETY: latch observed set; result published and exclusive.
        match unsafe { job.take_result() } {
            JobResult::Ok(value) => value,
            JobResult::Panic(payload) => panic::resume_unwind(payload),
            JobResult::Pending => unreachable!("latch set without a job result"),
        }
    }

    /// Terminates the pool: workers drain the queues, observe the
    /// shutdown gate, and are joined. Equivalent to dropping the pool,
    /// but explicit at test call sites.
    pub fn shutdown(self) {
        drop(self);
    }

    fn shutdown_in_place(&mut self) {
        if self.handles.is_empty() {
            return;
        }
        self.registry.terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.shutdown_in_place();
    }
}

impl std::fmt::Debug for ThreadPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ThreadPool")
            .field("num_threads", &self.registry.num_threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;
    use std::thread::ThreadId;
    use std::time::{Duration, Instant};

    fn pool(n: usize) -> ThreadPool {
        ThreadPoolBuilder::new()
            .num_threads(n)
            .build()
            .expect("build test pool")
    }

    /// Spins (yielding) until `cond` holds or ~5 s pass; returns whether
    /// the condition was met. Keeps rendezvous tests hang-free.
    fn spin_until(cond: impl Fn() -> bool) -> bool {
        let deadline = Instant::now() + Duration::from_secs(5);
        while !cond() {
            if Instant::now() > deadline {
                return false;
            }
            std::thread::yield_now();
        }
        true
    }

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_can_borrow_from_the_stack() {
        let data = vec![1u64, 2, 3, 4];
        let (lo, hi) = join(|| data[..2].iter().sum::<u64>(), || data[2..].iter().sum::<u64>());
        assert_eq!(lo + hi, 10);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }

    #[test]
    fn pool_reports_its_size_inside_install() {
        let pool = pool(3);
        assert_eq!(pool.current_num_threads(), 3);
        let inside = pool.install(current_num_threads);
        assert_eq!(inside, 3, "worker context must report the local pool size");
        pool.shutdown();
    }

    #[test]
    fn tasks_run_on_multiple_threads() {
        // Two rendezvousing closures: each records its thread and waits
        // for the other to start, which can only complete when a thief on
        // a *different* thread picked up the queued half.
        let pool = pool(4);
        let ids: Mutex<HashSet<ThreadId>> = Mutex::new(HashSet::new());
        let started = AtomicUsize::new(0);
        let task = |ids: &Mutex<HashSet<ThreadId>>, started: &AtomicUsize| {
            ids.lock().expect("ids lock").insert(std::thread::current().id());
            started.fetch_add(1, Ordering::SeqCst);
            assert!(
                spin_until(|| started.load(Ordering::SeqCst) >= 2),
                "second task never started — no stealing happened"
            );
        };
        pool.install(|| join(|| task(&ids, &started), || task(&ids, &started)));
        let distinct = ids.lock().expect("ids lock").len();
        assert!(distinct > 1, "both rendezvoused tasks ran on one thread");
        pool.shutdown();
    }

    #[test]
    fn panic_in_stolen_closure_propagates_to_join_caller() {
        let pool = pool(2);
        let b_started = AtomicUsize::new(0);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.install(|| {
                join(
                    || {
                        // Hold this worker until the other closure has
                        // demonstrably been stolen and started elsewhere.
                        assert!(spin_until(|| b_started.load(Ordering::SeqCst) == 1));
                    },
                    || {
                        b_started.fetch_add(1, Ordering::SeqCst);
                        panic!("boom in stolen closure");
                    },
                )
            })
        }));
        let payload = caught.expect_err("panic must propagate through join + install");
        let msg = payload
            .downcast_ref::<&str>()
            .copied()
            .unwrap_or_else(|| payload.downcast_ref::<String>().map(String::as_str).unwrap_or(""));
        assert!(msg.contains("boom"), "original payload is preserved: {msg:?}");
        pool.shutdown();
    }

    #[test]
    fn nested_join_inside_workers_does_not_deadlock() {
        // A full binary join tree of depth 10 (1024 leaves) on 4 workers:
        // every level forks from inside a worker, so completion proves
        // the steal-while-waiting path instead of thread-per-join.
        fn sum(lo: u64, hi: u64) -> u64 {
            if hi - lo <= 4 {
                (lo..hi).sum()
            } else {
                let mid = lo + (hi - lo) / 2;
                let (a, b) = join(|| sum(lo, mid), || sum(mid, hi));
                a + b
            }
        }
        let pool = pool(4);
        let total = pool.install(|| sum(0, 1024));
        assert_eq!(total, 1024 * 1023 / 2);
        pool.shutdown();
    }

    #[test]
    fn shutdown_joins_all_workers() {
        let pool = pool(4);
        let done = AtomicUsize::new(0);
        pool.install(|| {
            join(|| done.fetch_add(1, Ordering::SeqCst), || done.fetch_add(1, Ordering::SeqCst));
        });
        assert_eq!(done.load(Ordering::SeqCst), 2);
        // Must return (joining the four workers), not hang or leak.
        pool.shutdown();
    }

    #[test]
    fn install_runs_work_on_pool_workers() {
        let pool = pool(2);
        let caller = std::thread::current().id();
        let inside = pool.install(|| std::thread::current().id());
        assert_ne!(inside, caller, "install must run on a pool worker");
        pool.shutdown();
    }
}
