//! Offline std-only stand-in for the `rayon` crate (see vendor/README.md).
//!
//! Implements the tiny slice of rayon's API this workspace uses — the
//! fork-join primitive [`join`] and [`current_num_threads`] — on plain
//! `std::thread::scope`. Unlike real rayon there is no work-stealing pool:
//! every `join` spawns one OS thread for its second closure. Callers are
//! expected to control task granularity themselves (recurse down to a
//! grain size), which the in-tree users do, so the missing pool only costs
//! a few microseconds of spawn overhead per task.
//!
//! The API shapes mirror real rayon exactly, so restoring the real crate
//! in `[workspace.dependencies]` requires no source changes elsewhere.

#![forbid(unsafe_code)]

/// Runs `oper_a` and `oper_b` potentially in parallel and returns both
/// results. Panics from either closure propagate to the caller, like real
/// rayon's `join`.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    std::thread::scope(|s| {
        let handle_b = s.spawn(oper_b);
        let ra = oper_a();
        let rb = match handle_b.join() {
            Ok(rb) => rb,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (ra, rb)
    })
}

/// Number of threads the "pool" would use — the machine's available
/// parallelism (real rayon reports its global pool size, which defaults to
/// the same number).
pub fn current_num_threads() -> usize {
    std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results_in_order() {
        let (a, b) = join(|| 1 + 1, || "two");
        assert_eq!(a, 2);
        assert_eq!(b, "two");
    }

    #[test]
    fn join_nests() {
        let ((a, b), (c, d)) = join(|| join(|| 1, || 2), || join(|| 3, || 4));
        assert_eq!((a, b, c, d), (1, 2, 3, 4));
    }

    #[test]
    fn join_can_borrow_from_the_stack() {
        let data = vec![1u64, 2, 3, 4];
        let (lo, hi) = join(|| data[..2].iter().sum::<u64>(), || data[2..].iter().sum::<u64>());
        assert_eq!(lo + hi, 10);
    }

    #[test]
    fn thread_count_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
