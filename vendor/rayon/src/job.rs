//! Type-erased jobs: the unsafe core of the pool.
//!
//! A [`StackJob`] lives in the stack frame of the `join`/`install` call
//! that created it; a [`JobRef`] is a type- and lifetime-erased pointer to
//! it that can sit in a deque and be executed by any thread. The erasure
//! is sound because of two protocol invariants the rest of the crate
//! upholds:
//!
//! 1. **exclusivity** — a `JobRef` is claimed by removing it from exactly
//!    one `Mutex`-protected deque, so `execute` runs at most once;
//! 2. **liveness** — the frame owning the `StackJob` does not return until
//!    the job's latch is set, and the latch is set only *after* the result
//!    is written, so the pointer never dangles while reachable and the
//!    result read (after an `Acquire` probe of the latch) is data-race
//!    free against the `Release` store that published it.
//!
//! This mirrors real rayon's `StackJob`/`JobRef` design.

use crate::latch::Latch;
use std::any::Any;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};

/// A type-erased, lifetime-erased handle to a job queued for execution.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
}

// SAFETY: the pointee is a `StackJob` whose closure and result types are
// constrained `Send` at the only construction sites (`join`, `install`),
// and the liveness invariant keeps the pointer valid until executed.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erases `job` into a queueable reference.
    ///
    /// # Safety
    /// The caller must keep `*job` alive until the job has executed (the
    /// latch-before-return protocol) and must enqueue the returned ref in
    /// at most one deque.
    pub(crate) unsafe fn new<T: Job>(job: *const T) -> JobRef {
        JobRef {
            data: job.cast(),
            execute_fn: execute_erased::<T>,
        }
    }

    /// Stable identity used to recognize our own job when popping it back
    /// (live queued jobs are distinct stack frames, so addresses cannot
    /// collide; claimed jobs are removed before execution, so no stale
    /// entry survives to alias a reused frame).
    pub(crate) fn id(&self) -> *const () {
        self.data
    }

    /// Runs the job. Consumes the ref: a `JobRef` is executed at most once.
    ///
    /// # Safety
    /// The pointee must still be alive, and no other thread may hold a
    /// claimable copy of this ref.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// Implemented by concrete job representations ([`StackJob`]).
pub(crate) trait Job {
    /// Executes the job behind the erased pointer.
    ///
    /// # Safety
    /// `this` must point to a live instance and be executed at most once.
    unsafe fn execute(this: *const Self);
}

unsafe fn execute_erased<T: Job>(data: *const ()) {
    // SAFETY: forwarded from `JobRef::execute`, whose contract guarantees
    // the pointer is a live `*const T` executed at most once.
    unsafe { T::execute(data.cast()) }
}

/// Outcome of an executed job: the closure's value or its panic payload.
pub(crate) enum JobResult<R> {
    /// Not executed yet (never observed after the latch is set).
    Pending,
    /// Closure returned normally.
    Ok(R),
    /// Closure panicked; payload to rethrow at the `join` caller.
    Panic(Box<dyn Any + Send>),
}

/// A job allocated in the spawning call's stack frame.
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<JobResult<R>>,
    /// Set (after the result is written) when the job has run.
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    pub(crate) fn new(func: F, latch: Latch) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(JobResult::Pending),
            latch,
        }
    }

    /// Erases this job into a queueable [`JobRef`].
    ///
    /// # Safety
    /// See [`JobRef::new`]: the caller must not let `self` drop before the
    /// latch is set, and must enqueue the ref at most once.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // SAFETY: forwarded contract.
        unsafe { JobRef::new(self) }
    }

    /// Takes the result out after the latch has been observed set.
    ///
    /// # Safety
    /// Only the owning frame may call this, exactly once, after
    /// `self.latch.probe()` returned `true` (the `Acquire` probe pairs
    /// with the `Release` set that published the write).
    pub(crate) unsafe fn take_result(&self) -> JobResult<R> {
        // SAFETY: the executor finished its write before setting the
        // latch, and nothing else touches the cell afterwards.
        unsafe { std::mem::replace(&mut *self.result.get(), JobResult::Pending) }
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute(this: *const Self) {
        // SAFETY: `this` is live and executed at most once (JobRef
        // contract), so taking the closure out of the cell is exclusive.
        let this = unsafe { &*this };
        let func = unsafe { (*this.func.get()).take() };
        let func = func.expect("StackJob executed twice");
        let result = match panic::catch_unwind(AssertUnwindSafe(func)) {
            Ok(value) => JobResult::Ok(value),
            Err(payload) => JobResult::Panic(payload),
        };
        // SAFETY: still exclusive — the owner only reads after the latch.
        unsafe { *this.result.get() = result };
        // After this point `this` may dangle: the owning frame is free to
        // return as soon as it observes the latch. `Latch::set` is written
        // to touch only registry memory after its own Release store.
        this.latch.set();
    }
}
