//! The device's native high-level operator: arbitrary-precision polynomial
//! convolution (§V-C), plus the MPFR-like elementary layer (AGM π, ln,
//! exp) that decomposes onto the same kernels.
//!
//! ```sh
//! cargo run --release --example polynomial_convolution
//! ```

use cambricon_p_repro::apc_bignum::elementary::{exp, ln, pi_agm};
use cambricon_p_repro::apc_bignum::{Float, Nat};
use cambricon_p_repro::cambricon_p::Device;

fn main() {
    // 1. Polynomial convolution on the device: multiply two polynomials
    //    with 256-bit coefficients.
    let device = Device::new_default();
    let p: Vec<Nat> = (1..=4u64)
        .map(|i| Nat::power_of_two(250 + i) + Nat::from(i))
        .collect();
    let q: Vec<Nat> = (1..=3u64)
        .map(|i| Nat::power_of_two(255 - i) - Nat::from(7 * i))
        .collect();
    let r = device.convolution(&p, &q);
    println!("convolved a degree-3 and a degree-2 polynomial with ~256-bit coefficients:");
    println!("  result degree : {}", r.len() - 1);
    println!("  c0 bits       : {}", r[0].bit_len());
    println!("  device cycles : {}", device.stats().cycles);

    // Verify against the Eq. 1 identity: convolution == product of the
    // polynomials evaluated at a radix beyond every coefficient.
    let radix = 520u64;
    let lhs = Nat::from_chunks(&r, radix);
    let rhs = Nat::from_chunks(&p, radix) * Nat::from_chunks(&q, radix);
    assert_eq!(lhs, rhs, "convolution check via radix evaluation");
    println!("  verified against radix-2^520 evaluation ✓");

    // 2. The elementary layer: π by AGM, and exp/ln round trips — all
    //    built from the same long multiplications and square roots.
    println!();
    let pi = pi_agm(60);
    println!("π  (Gauss–Legendre AGM, 60 digits):\n  {}", pi.to_decimal_string(60));
    let ten = Float::from_u64(10, 256);
    let l = ln(&ten);
    println!("ln 10 = {}…", &l.to_decimal_string(25));
    let back = exp(&l);
    let err = back.sub(&ten).abs();
    assert!(err < Float::with_parts(false, Nat::one(), -150, 256));
    println!("exp(ln 10) round-trips to within 2⁻¹⁵⁰ ✓");
}
