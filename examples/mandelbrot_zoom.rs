//! Mandelbrot rendering with perturbation theory: the high-precision
//! reference orbit runs on the Cambricon-P session, pixels iterate f64
//! deltas, and the result prints as ASCII art (the Figure 13 "Frac"
//! experiment in miniature).
//!
//! ```sh
//! cargo run --release --example mandelbrot_zoom -- 1024
//! ```

use cambricon_p_repro::apc_apps::backend::Session;
use cambricon_p_repro::apc_apps::frac::render_perturbation;

const SHADES: &[u8] = b" .:-=+*#%@";

fn main() {
    let precision: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(512);

    let (width, height, max_iter) = (72, 28, 160);
    let session = Session::cambricon_p();
    let img = render_perturbation(
        -0.65,
        0.0,
        1.2,
        width,
        height,
        max_iter,
        precision,
        &session,
    );

    for y in 0..height {
        let mut line = String::with_capacity(width);
        for x in 0..width {
            let it = img.iterations[y * width + x];
            let ch = if it >= max_iter {
                b'@'
            } else {
                SHADES[(it as usize * (SHADES.len() - 1) / max_iter as usize).min(SHADES.len() - 2)]
            };
            line.push(ch as char);
        }
        println!("{line}");
    }

    let r = session.report();
    println!();
    println!(
        "reference orbit at {precision} bits on Cambricon-P: {:.3} µs of device time",
        r.device_seconds * 1e6
    );
    println!(
        "({} kernel multiplications issued to the device)",
        r.by_class
            .iter()
            .find(|(n, _, _)| *n == "Multiply")
            .map(|(_, ops, _)| *ops)
            .unwrap_or(0)
    );
}
