//! Compute digits of π with the Chudnovsky algorithm on both backends and
//! compare the modeled times (the Figure 13 "Pi" experiment in miniature).
//!
//! ```sh
//! cargo run --release --example pi_digits -- 10000
//! ```

use cambricon_p_repro::apc_apps::backend::Session;
use cambricon_p_repro::apc_apps::pi::chudnovsky_pi;

fn main() {
    let digits: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000);

    let software = Session::software();
    let pi = chudnovsky_pi(digits, &software);
    let sw = software.report();

    let device = Session::cambricon_p();
    let pi_dev = chudnovsky_pi(digits, &device);
    let hw = device.report();
    assert_eq!(pi, pi_dev, "both backends agree digit-for-digit");

    let shown = pi.len().min(80);
    println!("π to {digits} digits (first {shown} chars):");
    println!("{}", &pi[..shown]);
    if pi.len() > shown {
        println!("… [{} more digits]", pi.len() - shown);
    }
    println!();
    println!(
        "modeled Xeon+GMP time : {:.3} ms ({:.2e} J)",
        sw.modeled_cpu_seconds * 1e3,
        sw.energy_joules
    );
    println!(
        "Cambricon-P time      : {:.3} ms ({:.2e} J)",
        hw.device_seconds * 1e3,
        hw.energy_joules
    );
    println!(
        "speedup {:.1}x, energy benefit {:.1}x  (paper Pi average: 11.22x / in-line energy)",
        sw.modeled_cpu_seconds / hw.device_seconds,
        sw.energy_joules / hw.energy_joules
    );
}
