//! Quickstart: multiply two million-bit numbers on the simulated
//! Cambricon-P device, verify against the software oracle, and read back
//! the device statistics.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use cambricon_p_repro::apc_bignum::Nat;
use cambricon_p_repro::cambricon_p::accelerator::Accelerator;
use cambricon_p_repro::cambricon_p::stats::OpClass;
use cambricon_p_repro::cambricon_p::Device;

fn main() {
    // 1. A monolithic large multiplication via MPApca (functional result +
    //    calibrated cycle/energy model).
    let device = Device::new_default();
    let a = Nat::power_of_two(1_000_000) - Nat::from(12_345u64);
    let b = Nat::power_of_two(999_999) + Nat::from(67_890u64);

    let product = device.mul(&a, &b);
    assert_eq!(product, &a * &b, "device result matches the software oracle");

    let stats = device.stats();
    println!("multiplied two ~1,000,000-bit naturals on Cambricon-P:");
    println!("  result bits    : {}", product.bit_len());
    println!("  device cycles  : {}", stats.cycles);
    println!(
        "  device time    : {:.3} µs at {} GHz",
        device.seconds() * 1e6,
        device.config().clock_ghz
    );
    println!("  energy         : {:.3} µJ", device.energy_joules() * 1e6);
    println!(
        "  algorithm      : {:?} (threshold table of MPApca)",
        device.thresholds().select(1_000_000)
    );
    println!("  mul ops issued : {}", stats.ops_for(OpClass::Mul));

    // 2. The same computation through the *bit-exact structural model* at
    //    a smaller size: every bit goes through Converter → IPUs → GU →
    //    Adder Tree.
    let acc = Accelerator::new_default();
    let x = Nat::power_of_two(2_048) - Nat::from(3u64);
    let y = Nat::power_of_two(2_000) + Nat::from(7u64);
    let run = acc.multiply(&x, &y);
    assert_eq!(run.product, &x * &y);
    println!();
    println!("structural (bit-level) run of a 2048-bit multiply:");
    println!("  PE passes      : {}", run.pe_passes);
    println!("  cycles         : {}", run.cycles);
    println!(
        "  measured λ     : {:.3} (BIPS bops vs plain bit-serial; paper: 0.367 analytic)",
        run.tally.measured_lambda()
    );
}
