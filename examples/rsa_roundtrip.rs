//! RSA on the accelerator: generate a key, encrypt and decrypt on the
//! Cambricon-P session, and compare against the CPU model (the Figure 13
//! "RSA" experiment in miniature).
//!
//! ```sh
//! cargo run --release --example rsa_roundtrip -- 1024
//! ```

use cambricon_p_repro::apc_apps::backend::Session;
use cambricon_p_repro::apc_apps::rsa;
use cambricon_p_repro::apc_bignum::Nat;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let bits: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_024);

    let mut rng = StdRng::seed_from_u64(0xCA5C);
    println!("generating a {bits}-bit RSA key…");
    let key = rsa::generate(bits, &mut rng);
    println!("n = {} bits, e = {}", key.bits(), key.e);

    let message = Nat::from_decimal_str("299792458000000001618033988").unwrap() % &key.n;

    let software = Session::software();
    let c_sw = rsa::encrypt(&key, &message, &software);
    let m_sw = rsa::decrypt(&key, &c_sw, &software);

    let device = Session::cambricon_p();
    let c_hw = rsa::encrypt(&key, &message, &device);
    let m_hw = rsa::decrypt_crt(&key, &c_hw, &device);

    assert_eq!(c_sw, c_hw, "ciphertexts agree across backends");
    assert_eq!(m_sw, message);
    assert_eq!(m_hw, message, "CRT decrypt on the device round-trips");

    let sw = software.report();
    let hw = device.report();
    println!();
    println!("message round-tripped on both backends ✓");
    println!(
        "modeled Xeon+GMP : {:.3} ms",
        sw.modeled_cpu_seconds * 1e3
    );
    println!("Cambricon-P      : {:.3} ms", hw.device_seconds * 1e3);
    println!(
        "speedup {:.1}x (paper RSA: 1.51x at small keys up to 166.02x at large ones)",
        sw.modeled_cpu_seconds / hw.device_seconds
    );
}
