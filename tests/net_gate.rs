//! Tier-1 gate for the network layer (`apc-net`).
//!
//! Four contracts, each load-bearing for the off-box serving story:
//!
//! 1. **Bit-exactness over the wire** — a randomized cross-bucket job
//!    mix sent through `NetClient → NetServer → Router (2 shards)` must
//!    decode to results identical to a private `Device`. TCP framing,
//!    limb encoding, consistent-hash routing, and batch scheduling may
//!    reorder *execution*, never *values*.
//! 2. **Fail-closed framing** — a frame whose length prefix exceeds the
//!    cap derived from `max_operand_bits` is answered with the typed
//!    `OversizedFrame` status before its body is read.
//! 3. **Auth at accept time** — a wrong tenant token is rejected with
//!    the typed `AuthRejected` status before any operand is sent.
//! 4. **Graceful drain** — shutdown lets in-flight connections finish:
//!    a request already accepted still receives its (bit-exact)
//!    response, and only then does the listener go away.

use apc_bignum::Nat;
use apc_net::{
    wire, NetClient, NetClientConfig, NetError, NetServer, NetServerConfig, Router, WireStatus,
};
use apc_serve::{Job, JobOutput, ServeConfig};
use cambricon_p::Device;
use rand::{Rng, RngCore, SeedableRng};
use std::io::{Read, Write};
use std::net::TcpStream;

const TOKEN: &[u8] = b"tenant-alpha";

fn random_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63; // pin the width so the job lands in its bucket
    }
    Nat::from_limbs(v)
}

/// Like [`random_nat`] but guaranteed odd (a valid Montgomery modulus).
fn random_odd_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    v[0] |= 1;
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63;
    }
    Nat::from_limbs(v)
}

/// The expected output of `job`, computed on a private device.
fn direct(device: &Device, job: &Job) -> JobOutput {
    match job {
        Job::Mul { a, b } => JobOutput::Product(device.mul(a, b)),
        Job::Div { a, b } => {
            let (q, r) = device.divrem(a, b);
            JobOutput::DivRem { quotient: q, remainder: r }
        }
        Job::Sqrt { a } => {
            let (root, rem) = device.sqrt_rem(a);
            JobOutput::SqrtRem { root, remainder: rem }
        }
        Job::ModExp { base, exp, modulus } => {
            JobOutput::PowMod(device.pow_mod(base, exp, modulus))
        }
    }
}

fn start_server(shards: usize) -> NetServer<Router> {
    let serve_cfg = ServeConfig { workers: 1, ..ServeConfig::default() };
    let router = Router::start(shards, serve_cfg);
    NetServer::start(
        "127.0.0.1:0",
        router,
        NetServerConfig { tokens: vec![TOKEN.to_vec()], ..NetServerConfig::default() },
    )
    .expect("bind loopback")
}

fn client_config() -> NetClientConfig {
    NetClientConfig { token: TOKEN.to_vec(), ..NetClientConfig::default() }
}

#[test]
fn loopback_round_trip_is_bit_identical_to_direct_device() {
    let server = start_server(2);
    let device = Device::new_default();
    let mut client = NetClient::connect(server.local_addr(), &client_config()).expect("connect");

    let mut rng = rand::rngs::StdRng::seed_from_u64(0xA9C_2022);
    for i in 0..24u64 {
        let bits = [96u64, 300, 900, 2500, 7000][rng.gen_range(0usize..5)];
        let job = match i % 4 {
            0 => Job::Mul {
                a: random_nat(&mut rng, bits),
                b: random_nat(&mut rng, bits / 2 + 17),
            },
            1 => Job::Div {
                a: random_nat(&mut rng, bits),
                b: random_nat(&mut rng, bits / 3 + 13),
            },
            2 => Job::Sqrt { a: random_nat(&mut rng, bits) },
            _ => Job::ModExp {
                base: random_nat(&mut rng, bits / 2 + 5),
                exp: Nat::from(rng.gen_range(3u64..40)),
                modulus: random_odd_nat(&mut rng, bits / 2 + 5),
            },
        };
        let expected = direct(&device, &job);
        let got = client.request(job).expect("request succeeds");
        assert_eq!(got, expected, "wire result diverged from direct device at job {i}");
    }
    // The scrape-visible counters saw this traffic.
    let metrics = server.metrics();
    assert!(metrics.frames_in.load(std::sync::atomic::Ordering::Relaxed) >= 25);
    assert!(metrics.jobs_ok.load(std::sync::atomic::Ordering::Relaxed) == 24);
    server.shutdown();
}

#[test]
fn oversized_frame_is_rejected_with_the_typed_status() {
    let server = start_server(1);
    // Handshake by hand so we control the raw bytes afterwards.
    let mut stream = TcpStream::connect(server.local_addr()).expect("connect");
    stream.write_all(&wire::MAGIC).expect("preamble");
    let hello = wire::encode_hello(&wire::Hello { token: TOKEN.to_vec() });
    wire::write_frame(&mut stream, &hello).expect("hello");
    let ack = wire::read_frame(&mut stream, 1 << 16).expect("ack frame");
    let ack = wire::decode_response(&ack).expect("ack decodes");
    assert_eq!(ack.body, wire::ResponseBody::Ack);

    // A length prefix far beyond the cap derived from max_operand_bits.
    // The body is never sent — the server must answer from the prefix
    // alone and close.
    stream.write_all(&u32::MAX.to_le_bytes()).expect("hostile prefix");
    let resp = wire::read_frame(&mut stream, 1 << 16).expect("rejection frame");
    let resp = wire::decode_response(&resp).expect("rejection decodes");
    assert_eq!(resp.body, wire::ResponseBody::Failed(WireStatus::OversizedFrame));
    // And the connection is closed behind it.
    let mut rest = Vec::new();
    let _ = stream.read_to_end(&mut rest);
    assert!(rest.is_empty(), "server kept talking after a framing violation");
    assert_eq!(
        server.metrics().oversized_frames.load(std::sync::atomic::Ordering::Relaxed),
        1
    );
    server.shutdown();
}

#[test]
fn bad_auth_token_is_rejected_before_any_operand() {
    let server = start_server(1);
    let bad = NetClientConfig { token: b"wrong-tenant".to_vec(), ..NetClientConfig::default() };
    match NetClient::connect(server.local_addr(), &bad) {
        Err(NetError::Server(WireStatus::AuthRejected)) => {}
        other => panic!("expected typed AuthRejected, got {other:?}"),
    }
    assert_eq!(server.metrics().auth_rejects.load(std::sync::atomic::Ordering::Relaxed), 1);
    // The right token still works on the same listener.
    let mut ok = NetClient::connect(server.local_addr(), &client_config()).expect("good token");
    let a = Nat::from(12345u64);
    let out = ok.request(Job::Mul { a: a.clone(), b: a.clone() }).expect("request");
    assert_eq!(out, JobOutput::Product(&a * &a));
    server.shutdown();
}

#[test]
fn shutdown_drains_in_flight_connections() {
    let server = start_server(2);
    let addr = server.local_addr();
    let device = Device::new_default();

    // A connected client with a request already in flight when
    // shutdown begins: big operands so service time comfortably
    // overlaps the drain.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let a = random_nat(&mut rng, 60_000);
    let b = random_nat(&mut rng, 60_000);
    let expected = direct(&device, &Job::Mul { a: a.clone(), b: b.clone() });

    let handle = std::thread::spawn(move || {
        let mut client = NetClient::connect(addr, &client_config()).expect("connect");
        client.request(Job::Mul { a, b })
    });
    // Give the client thread time to get its request admitted, then
    // drain. (Sleeping in tests is fine; the library itself never does.)
    std::thread::sleep(std::time::Duration::from_millis(100));
    server.shutdown();

    let got = handle.join().expect("client thread").expect("in-flight request completes");
    assert_eq!(got, expected, "drained response lost bit-exactness");

    // After the drain the listener is gone: new connects fail or are
    // reset before a handshake completes.
    assert!(
        NetClient::connect(addr, &client_config()).is_err(),
        "listener survived shutdown"
    );
}
