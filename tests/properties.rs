//! Cross-crate property-based tests: the device model must agree with the
//! software substrate on arbitrary inputs, and the substrate must satisfy
//! the algebraic laws of ℕ.

use cambricon_p_repro::apc_bignum::Nat;
use cambricon_p_repro::cambricon_p::accelerator::Accelerator;
use cambricon_p_repro::cambricon_p::gu::{gather_carry_parallel, gather_reference};
use cambricon_p_repro::cambricon_p::Device;
use proptest::prelude::*;

fn arb_nat(max_limbs: usize) -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Nat::from_limbs)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_mul_matches_oracle(a in arb_nat(40), b in arb_nat(40)) {
        let dev = Device::new_default();
        prop_assert_eq!(dev.mul(&a, &b), &a * &b);
    }

    #[test]
    fn device_divrem_is_euclidean(a in arb_nat(30), b in arb_nat(12)) {
        prop_assume!(!b.is_zero());
        let dev = Device::new_default();
        let (q, r) = dev.divrem(&a, &b);
        prop_assert!(&r < &b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn device_sqrt_is_floor_sqrt(a in arb_nat(20)) {
        let dev = Device::new_default();
        let (s, r) = dev.sqrt_rem(&a);
        prop_assert_eq!(&(&s * &s) + &r, a.clone());
        let next = &s + &Nat::one();
        prop_assert!(&next * &next > a);
    }

    #[test]
    fn gather_unit_is_exact(parts in prop::collection::vec(any::<u64>(), 0..20)) {
        let nats: Vec<Nat> = parts.iter().map(|&v| Nat::from(v)).collect();
        let g = gather_carry_parallel(&nats, 32);
        prop_assert_eq!(g.value, gather_reference(&nats, 32));
    }

    #[test]
    fn mul_cycles_monotone(bits in 64u64..2_000_000) {
        let dev = Device::new_default();
        let c1 = dev.mul_cycles(bits, bits);
        let c2 = dev.mul_cycles(bits * 2, bits * 2);
        prop_assert!(c2 >= c1);
    }
}

proptest! {
    // The structural model is expensive per case; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn structural_accelerator_matches_oracle(a in arb_nat(8), b in arb_nat(8)) {
        let acc = Accelerator::new_default();
        prop_assert_eq!(acc.multiply(&a, &b).product, &a * &b);
    }

    #[test]
    fn parallel_accelerator_is_bit_identical_to_sequential(
        a in arb_nat(12), b in arb_nat(12)
    ) {
        // With the `parallel` feature, `multiply` dispatches PE passes
        // across threads; the reduce must make every observable output —
        // product, cycle model, pass count, bops tally — identical to the
        // sequential schedule. Without the feature both paths are
        // sequential and this degenerates to determinism.
        let acc = Accelerator::new_default();
        let par = acc.multiply(&a, &b);
        let seq = acc.multiply_sequential(&a, &b);
        prop_assert_eq!(par.product, seq.product);
        prop_assert_eq!(par.cycles, seq.cycles);
        prop_assert_eq!(par.pe_passes, seq.pe_passes);
        prop_assert_eq!(par.tally, seq.tally);
    }

    #[test]
    fn parallel_software_mul_is_bit_identical(
        a in arb_nat(1200), b in arb_nat(1200)
    ) {
        // Exercises the Toom-k pointwise-product dispatch in apc-bignum
        // (operands up to ~76k bits reach Toom-2/3/4 with the default
        // thresholds). The runtime switch must not change any product bit.
        use cambricon_p_repro::apc_bignum::par;
        par::set_parallel_enabled(false);
        let seq = &a * &b;
        par::set_parallel_enabled(true);
        let par_product = &a * &b;
        prop_assert_eq!(par_product, seq);
    }
}
