//! Cross-crate property-based tests: the device model must agree with the
//! software substrate on arbitrary inputs, and the substrate must satisfy
//! the algebraic laws of ℕ.

use cambricon_p_repro::apc_bignum::Nat;
use cambricon_p_repro::cambricon_p::accelerator::Accelerator;
use cambricon_p_repro::cambricon_p::gu::{gather_carry_parallel, gather_reference};
use cambricon_p_repro::cambricon_p::Device;
use proptest::prelude::*;
use std::sync::{Mutex, MutexGuard, PoisonError};

fn arb_nat(max_limbs: usize) -> impl Strategy<Value = Nat> {
    prop::collection::vec(any::<u64>(), 0..=max_limbs).prop_map(Nat::from_limbs)
}

/// Serializes tests that flip the process-global `par` runtime switch (the
/// test harness runs siblings concurrently) and restores the documented
/// default (`true`) on drop — including the panic path, so a failing
/// assertion cannot leak a disabled switch into unrelated tests.
struct SwitchGuard {
    _lock: MutexGuard<'static, ()>,
}

impl SwitchGuard {
    fn acquire() -> SwitchGuard {
        static SWITCH_TESTS: Mutex<()> = Mutex::new(());
        SwitchGuard {
            _lock: SWITCH_TESTS.lock().unwrap_or_else(PoisonError::into_inner),
        }
    }
}

impl Drop for SwitchGuard {
    fn drop(&mut self) {
        cambricon_p_repro::apc_bignum::par::set_parallel_enabled(true);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn device_mul_matches_oracle(a in arb_nat(40), b in arb_nat(40)) {
        let dev = Device::new_default();
        prop_assert_eq!(dev.mul(&a, &b), &a * &b);
    }

    #[test]
    fn device_divrem_is_euclidean(a in arb_nat(30), b in arb_nat(12)) {
        prop_assume!(!b.is_zero());
        let dev = Device::new_default();
        let (q, r) = dev.divrem(&a, &b);
        prop_assert!(&r < &b);
        prop_assert_eq!(&(&q * &b) + &r, a);
    }

    #[test]
    fn device_sqrt_is_floor_sqrt(a in arb_nat(20)) {
        let dev = Device::new_default();
        let (s, r) = dev.sqrt_rem(&a);
        prop_assert_eq!(&(&s * &s) + &r, a.clone());
        let next = &s + &Nat::one();
        prop_assert!(&next * &next > a);
    }

    #[test]
    fn gather_unit_is_exact(parts in prop::collection::vec(any::<u64>(), 0..20)) {
        let nats: Vec<Nat> = parts.iter().map(|&v| Nat::from(v)).collect();
        let g = gather_carry_parallel(&nats, 32);
        prop_assert_eq!(g.value, gather_reference(&nats, 32));
    }

    #[test]
    fn mul_cycles_monotone(bits in 64u64..2_000_000) {
        let dev = Device::new_default();
        let c1 = dev.mul_cycles(bits, bits);
        let c2 = dev.mul_cycles(bits * 2, bits * 2);
        prop_assert!(c2 >= c1);
    }
}

proptest! {
    // The structural model is expensive per case; fewer cases.
    #![proptest_config(ProptestConfig::with_cases(12))]

    #[test]
    fn structural_accelerator_matches_oracle(a in arb_nat(8), b in arb_nat(8)) {
        let acc = Accelerator::new_default();
        prop_assert_eq!(acc.multiply(&a, &b).product, &a * &b);
    }

    #[test]
    fn parallel_accelerator_is_bit_identical_to_sequential(
        a in arb_nat(12), b in arb_nat(12)
    ) {
        // With the `parallel` feature, `multiply` dispatches PE passes
        // across threads; the reduce must make every observable output —
        // product, cycle model, pass count, bops tally — identical to the
        // sequential schedule. Without the feature both paths are
        // sequential and this degenerates to determinism.
        let acc = Accelerator::new_default();
        let par = acc.multiply(&a, &b);
        let seq = acc.multiply_sequential(&a, &b);
        prop_assert_eq!(par.product, seq.product);
        prop_assert_eq!(par.cycles, seq.cycles);
        prop_assert_eq!(par.pe_passes, seq.pe_passes);
        prop_assert_eq!(par.tally, seq.tally);
    }

    #[test]
    fn parallel_software_mul_is_bit_identical(
        a in arb_nat(1200), b in arb_nat(1200)
    ) {
        // Exercises the Toom-k pointwise-product dispatch in apc-bignum
        // (operands up to ~76k bits reach Toom-2/3/4 with the default
        // thresholds). The runtime switch must not change any product bit.
        use cambricon_p_repro::apc_bignum::par;
        let _guard = SwitchGuard::acquire();
        par::set_parallel_enabled(false);
        let seq = &a * &b;
        par::set_parallel_enabled(true);
        let par_product = &a * &b;
        prop_assert_eq!(par_product, seq);
    }
}

/// The host may have any core count (this CI container has one), so the
/// global pool alone cannot prove multi-worker behavior. Build an explicit
/// eight-worker pool and re-prove bit-identity of both parallel layers —
/// the PE(b, w) grid dispatch and the Toom-6 pointwise-product dispatch —
/// with work genuinely spread over eight deques.
#[cfg(feature = "parallel")]
#[test]
fn eight_worker_pool_is_bit_identical_to_sequential() {
    use cambricon_p_repro::apc_bignum::par;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let _guard = SwitchGuard::acquire();
    let mut rng = StdRng::seed_from_u64(0xA9C);
    let pool = rayon::ThreadPoolBuilder::new()
        .num_threads(8)
        .build()
        .expect("build 8-worker pool");

    // Structural layer: every observable output of the PE grid — product,
    // cycle model, pass count, bops tally — must match the sequential
    // schedule at the bench's largest sweep size.
    let acc = Accelerator::new_default();
    let a = Nat::random_exact_bits(8192, &mut rng);
    let b = Nat::random_exact_bits(8192, &mut rng);
    let seq = acc.multiply_sequential(&a, &b);
    let par = pool.install(|| acc.multiply(&a, &b));
    assert_eq!(par.product, seq.product);
    assert_eq!(par.cycles, seq.cycles);
    assert_eq!(par.pe_passes, seq.pe_passes);
    assert_eq!(par.tally, seq.tally);

    // Software layer: ~128k-bit operands (2000 limbs) land in the Toom-6
    // region of the default thresholds (1536..6000 limbs), so the eleven
    // pointwise products fan out across the pool.
    let a = Nat::random_exact_bits(128_000, &mut rng);
    let b = Nat::random_exact_bits(128_000, &mut rng);
    par::set_parallel_enabled(false);
    let seq_product = &a * &b;
    par::set_parallel_enabled(true);
    let par_product = pool.install(|| &a * &b);
    assert_eq!(par_product, seq_product);

    pool.shutdown();
}
