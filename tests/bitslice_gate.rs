//! Tier-1 gate: the Sliced64 kernel backend must be bit-identical to the
//! Scalar oracle — results, cycle counts, stage attribution and bops
//! tallies alike.
//!
//! The Sliced64 backend packs 64 bitflow steps into each host word op;
//! nothing about the modeled machine may change. This gate drives the
//! same randomized operands through both backends across a width sweep
//! (including exact powers of two and their ±1 neighbours, where limb
//! decomposition boundaries live) and over every operator MPApca builds
//! on the structural path, then compares the full `DeviceStats`
//! snapshots field for field.

use apc_bignum::Nat;
use cambricon_p::{ArchConfig, Device, KernelBackend};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn device_pair(config: &ArchConfig) -> (Device, Device) {
    (
        Device::new(config.clone()).with_kernel_backend(KernelBackend::Scalar),
        Device::new(config.clone()).with_kernel_backend(KernelBackend::Sliced64),
    )
}

/// Operand widths around every power-of-two boundary in the interesting
/// range, plus a few odd sizes that leave partial final limbs.
fn width_sweep() -> Vec<u64> {
    let mut widths = vec![1, 7, 100, 777];
    for p in [6u32, 8, 10, 12] {
        let b = 1u64 << p;
        widths.extend([b - 1, b, b + 1]);
    }
    widths
}

#[test]
fn sliced_mul_structural_matches_scalar_bit_for_bit() {
    let mut rng = StdRng::seed_from_u64(0xB175_11CE);
    for cfg in [
        ArchConfig::default(),
        ArchConfig {
            n_pe: 4,
            n_ipu: 4,
            q: 3,
            limb_bits: 20,
            ..ArchConfig::default()
        },
        ArchConfig {
            n_pe: 2,
            n_ipu: 2,
            q: 2,
            limb_bits: 8,
            ..ArchConfig::default()
        },
    ] {
        let (scalar, sliced) = device_pair(&cfg);
        for bits in width_sweep() {
            let a = Nat::random_exact_bits(bits, &mut rng);
            let b = Nat::random_exact_bits(bits.max(2) - 1, &mut rng);
            let ps = scalar.mul_structural(&a, &b);
            let pv = sliced.mul_structural(&a, &b);
            assert_eq!(pv, ps, "product diverged at {bits} bits (q={})", cfg.q);
            assert_eq!(pv, &a * &b, "both backends must match the oracle");
        }
        // Zero and one still go through the structural path.
        for special in [Nat::zero(), Nat::one()] {
            let x = Nat::random_exact_bits(257, &mut rng);
            assert_eq!(
                scalar.mul_structural(&x, &special),
                sliced.mul_structural(&x, &special)
            );
        }
        let s = scalar.stats();
        let v = sliced.stats();
        assert_eq!(
            s, v,
            "DeviceStats snapshots must be identical (cycles, stages, pe slots, bops)"
        );
        assert_eq!(s.stage_cycles, v.stage_cycles);
        assert!(s.stage_cycles.converter > 0, "the sweep did real work");
    }
}

#[test]
fn sliced_derived_operators_match_scalar() {
    // Div / Sqrt / ModExp build on the same device arithmetic; their
    // results and accounted cycles must not depend on the backend.
    let mut rng = StdRng::seed_from_u64(0x5EED_CAFE);
    let (scalar, sliced) = device_pair(&ArchConfig::default());
    for bits in [255u64, 256, 257, 1024, 4095] {
        let a = Nat::random_exact_bits(2 * bits, &mut rng);
        let b = Nat::random_exact_bits(bits, &mut rng);
        assert_eq!(scalar.divrem(&a, &b), sliced.divrem(&a, &b), "div {bits}");
        assert_eq!(scalar.sqrt_rem(&a), sliced.sqrt_rem(&a), "sqrt {bits}");
        let modulus = Nat::random_exact_bits(bits, &mut rng).with_bit(0, true);
        let exp = Nat::random_exact_bits(64, &mut rng);
        assert_eq!(
            scalar.pow_mod(&b, &exp, &modulus),
            sliced.pow_mod(&b, &exp, &modulus),
            "pow_mod {bits}"
        );
    }
    assert_eq!(scalar.stats(), sliced.stats());
}

#[test]
fn unsupported_envelope_is_still_exact() {
    // L = 64 with q = 4 exceeds the one-word pattern envelope: the
    // Sliced64 request must fall back to Scalar and stay bit-exact.
    let cfg = ArchConfig {
        limb_bits: 64,
        ..ArchConfig::default()
    };
    assert!(!KernelBackend::Sliced64.supports(&cfg));
    let (scalar, sliced) = device_pair(&cfg);
    let mut rng = StdRng::seed_from_u64(7);
    let a = Nat::random_exact_bits(4096, &mut rng);
    let b = Nat::random_exact_bits(4097, &mut rng);
    assert_eq!(scalar.mul_structural(&a, &b), sliced.mul_structural(&a, &b));
    assert_eq!(scalar.stats(), sliced.stats());
}
