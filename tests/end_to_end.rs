//! Integration tests spanning the workspace crates: the device model, the
//! software substrate, the applications and the baselines must all agree
//! with each other.

use cambricon_p_repro::apc_apps::backend::Session;
use cambricon_p_repro::apc_apps::{pi, rsa, zkcm};
use cambricon_p_repro::apc_bignum::{MulAlgorithm, Nat};
use cambricon_p_repro::cambricon_p::accelerator::Accelerator;
use cambricon_p_repro::cambricon_p::transform::{convolve, recompose, to_limb_vector};
use cambricon_p_repro::cambricon_p::Device;
use rand::rngs::StdRng;
use rand::SeedableRng;

#[test]
fn structural_model_matches_mpapca_and_oracle() {
    let mut rng = StdRng::seed_from_u64(42);
    let acc = Accelerator::new_default();
    let dev = Device::new_default();
    for bits in [64u64, 777, 2048, 4096] {
        let a = Nat::random_exact_bits(bits, &mut rng);
        let b = Nat::random_exact_bits(bits, &mut rng);
        let oracle = &a * &b;
        assert_eq!(acc.multiply(&a, &b).product, oracle, "structural {bits}");
        assert_eq!(dev.mul(&a, &b), oracle, "mpapca {bits}");
    }
}

#[test]
fn equation_one_holds_at_device_limb_width() {
    let mut rng = StdRng::seed_from_u64(7);
    let a = Nat::random_exact_bits(10_000, &mut rng);
    let b = Nat::random_exact_bits(9_000, &mut rng);
    let xs = to_limb_vector(&a, 32);
    let ys = to_limb_vector(&b, 32);
    let ips = convolve(&xs, &ys);
    assert_eq!(recompose(&ips, 32), &a * &b);
}

#[test]
fn every_mul_algorithm_agrees_with_the_device() {
    let mut rng = StdRng::seed_from_u64(11);
    let dev = Device::new_default();
    let a = Nat::random_exact_bits(30_000, &mut rng);
    let b = Nat::random_exact_bits(28_000, &mut rng);
    let device_result = dev.mul(&a, &b);
    for alg in [
        MulAlgorithm::Karatsuba,
        MulAlgorithm::Toom3,
        MulAlgorithm::Toom4,
        MulAlgorithm::Toom6,
        MulAlgorithm::Ssa,
    ] {
        assert_eq!(a.mul_with(&b, alg), device_result, "{alg:?}");
    }
}

#[test]
fn pi_is_identical_across_backends_and_correct() {
    let sw = Session::software();
    let hw = Session::cambricon_p();
    let p1 = pi::chudnovsky_pi(120, &sw);
    let p2 = pi::chudnovsky_pi(120, &hw);
    assert_eq!(p1, p2);
    assert!(p1.starts_with("3.14159265358979323846264338327950288419716939937510"));
}

#[test]
fn rsa_crosses_backends() {
    // Encrypt on software, decrypt on the device — ciphertexts are plain
    // numbers, so the backends must interoperate.
    let mut rng = StdRng::seed_from_u64(5);
    let key = rsa::generate(384, &mut rng);
    let sw = Session::software();
    let hw = Session::cambricon_p();
    let m = Nat::random_below(&key.n, &mut rng);
    let c = rsa::encrypt(&key, &m, &sw);
    assert_eq!(rsa::decrypt(&key, &c, &hw), m);
}

#[test]
fn ghz_state_is_unitary_on_device() {
    let hw = Session::cambricon_p();
    let st = zkcm::ghz(3, 256, &hw);
    let norm = st.norm_sq(&hw);
    let err = (st.ctx.to_f64(&norm) - 1.0).abs();
    assert!(err < 1e-12, "norm error {err}");
}

#[test]
fn device_speedup_grows_with_monolithic_size() {
    // The Figure 11 shape in miniature: the device's advantage over the
    // modeled CPU grows through the monolithic range.
    let dev = Device::new_default();
    let mut prev_ratio = 0.0;
    for bits in [1_024u64, 4_096, 16_384] {
        let cpu = cambricon_p_repro::apc_baselines::cpu::mul_seconds(bits);
        let d = dev.mul_cycles(bits, bits) as f64 * dev.config().cycle_seconds();
        let ratio = cpu / d;
        assert!(ratio > prev_ratio, "speedup should grow at {bits} bits");
        prev_ratio = ratio;
    }
    assert!(prev_ratio > 50.0, "monolithic range speedup is large");
}

#[test]
fn table_iii_headline_numbers() {
    let dev = Device::new_default();
    let cam = dev.mul_cycles(4096, 4096) as f64 * dev.config().cycle_seconds();
    assert!((cam - 1.6e-8).abs() < 1e-12, "Table III device anchor");
    let gpu = cambricon_p_repro::apc_baselines::gpu::amortized_mul_seconds(4096, 100_000).unwrap();
    assert!((gpu / cam - 1.0).abs() < 0.25, "same throughput as V100+CGBN");
    let cpu = cambricon_p_repro::apc_baselines::cpu::mul_seconds(4096);
    let speedup = cpu / cam;
    assert!(
        (60.0..160.0).contains(&speedup),
        "~101x headline speedup, got {speedup}"
    );
}

#[test]
fn energy_model_orders_systems_like_the_paper() {
    // Device beats CPU on both time and energy for a large multiply.
    let dev = Device::new_default();
    let a = Nat::power_of_two(20_000) - Nat::one();
    let _ = dev.mul(&a, &a);
    let dev_j = dev.energy_joules();
    let cpu_s = cambricon_p_repro::apc_baselines::cpu::mul_seconds(20_000);
    let cpu_j = cambricon_p_repro::apc_baselines::cpu::energy_joules(cpu_s);
    assert!(cpu_j / dev_j > 10.0, "energy benefit should be large");
}
