//! Tier-1 gate for the observability layer (`apc-trace`).
//!
//! Two contracts:
//!
//! 1. **Zero perturbation** — running the same workload with tracing
//!    enabled and disabled must produce bit-identical results and
//!    identical modeled cycle counts, at every layer: the structural
//!    `Accelerator`, the `Device` cycle model, and the `apc-serve` job
//!    path. Tracing may only ever add samples to histograms; it must
//!    never touch a computed value. With tracing off, the span
//!    histograms must stay empty while the plain counters keep counting.
//! 2. **Exporter agreement** — on a randomized serve workload, the
//!    Prometheus text rendering and the JSON rendering must both agree
//!    with the raw `MetricsSnapshot` totals they were built from. Both
//!    exporters consume the same `Metric` list, so this pins the
//!    list-building itself (`export_metrics`) against the counters.

use apc_bignum::Nat;
use apc_serve::{Job, JobOutput, JobSpec, MetricsSnapshot, ServeConfig, ServeHandle};
use cambricon_p::accelerator::Accelerator;
use cambricon_p::Device;
use rand::{Rng, RngCore, SeedableRng};
use std::sync::{Mutex, MutexGuard, PoisonError};

/// Serializes the tests in this binary that toggle the process-wide
/// tracing flag, and restores the flag even if an assertion fails.
static FLAG_LOCK: Mutex<()> = Mutex::new(());

struct FlagGuard {
    _lock: MutexGuard<'static, ()>,
}

impl FlagGuard {
    fn set(on: bool) -> FlagGuard {
        let lock = FLAG_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        apc_trace::set_enabled(on);
        FlagGuard { _lock: lock }
    }
}

impl Drop for FlagGuard {
    fn drop(&mut self) {
        apc_trace::set_enabled(true);
    }
}

fn random_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63;
    }
    Nat::from_limbs(v)
}

/// One deterministic pass over all three layers; returns everything the
/// workload computed (values and cycle counts, no wall-clock anywhere).
fn run_workload(seed: u64) -> (Vec<Nat>, Vec<u64>) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut values = Vec::new();
    let mut cycles = Vec::new();

    // Layer 1: the structural accelerator.
    let acc = Accelerator::new_default();
    for bits in [300u64, 2_000, 6_000] {
        let a = random_nat(&mut rng, bits);
        let b = random_nat(&mut rng, bits / 2);
        let out = acc.multiply(&a, &b);
        values.push(out.product);
        cycles.push(out.cycles);
        cycles.push(out.pe_passes);
        cycles.push(out.pe_slots);
        cycles.push(out.stages.converter);
        cycles.push(out.stages.adder_tree);
    }

    // Layer 2: the device cycle model (analytic and structural paths).
    let device = Device::new_default();
    for bits in [500u64, 3_000] {
        let a = random_nat(&mut rng, bits);
        let b = random_nat(&mut rng, bits);
        values.push(device.mul(&a, &b));
        values.push(device.mul_structural(&a, &b));
    }
    let stats = device.stats_snapshot();
    cycles.push(stats.cycles);
    cycles.push(stats.pe_passes);
    cycles.push(stats.pe_slots);

    // Layer 3: the serving path (cycle-domain outputs only).
    let serve = ServeHandle::start(ServeConfig::default());
    for bits in [400u64, 1_500] {
        let a = random_nat(&mut rng, bits);
        let b = random_nat(&mut rng, bits);
        let report = serve
            .submit_wait(Job::Mul { a, b }, JobSpec::default())
            .expect("serve accepts in-ceiling jobs");
        if let JobOutput::Product(p) = report.output {
            values.push(p);
        }
        cycles.push(report.service_cycles);
    }
    let m = serve.metrics();
    cycles.push(m.submitted);
    cycles.push(m.completed);
    cycles.push(m.cycles_by_class.iter().sum());
    serve.shutdown();
    (values, cycles)
}

#[test]
fn tracing_on_and_off_are_bit_identical() {
    let baseline = {
        let _guard = FlagGuard::set(true);
        run_workload(0xAB5)
    };
    let untraced = {
        let _guard = FlagGuard::set(false);
        run_workload(0xAB5)
    };
    assert_eq!(baseline.0, untraced.0, "results must not depend on tracing");
    assert_eq!(baseline.1, untraced.1, "cycle counts must not depend on tracing");
}

#[test]
fn disabled_tracing_leaves_histograms_empty_but_counters_counting() {
    let _guard = FlagGuard::set(false);
    let serve = ServeHandle::start(ServeConfig::default());
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    for _ in 0..3 {
        let a = random_nat(&mut rng, 800);
        serve
            .submit_wait(Job::Mul { a: a.clone(), b: a }, JobSpec::default())
            .expect("serve accepts in-ceiling jobs");
    }
    let m = serve.metrics();
    serve.shutdown();
    assert_eq!(m.submitted, 3, "plain counters never gate on the flag");
    assert_eq!(m.completed, 3);
    assert!(m.cycles_by_class.iter().sum::<u64>() > 0, "attribution still works");
    for (name, h) in [
        ("submit_ns", &m.submit_ns),
        ("queue_wait_ns", &m.queue_wait_ns),
        ("batch_form_ns", &m.batch_form_ns),
        ("dispatch_wait_ns", &m.dispatch_wait_ns),
        ("service_ns", &m.service_ns),
        ("service_cycles", &m.service_cycles),
    ] {
        assert_eq!(h.count, 0, "{name} must stay empty with tracing off");
        assert_eq!(h.sum, 0, "{name} must stay empty with tracing off");
    }
}

#[test]
fn disabled_tracing_silences_the_pattern_cache_counters() {
    // The zero-perturbation contract extends to the pattern-table cache
    // (DESIGN.md §"Admission and caching"): with tracing globally off, a
    // cache lookup — hit or miss — must not perform a single
    // shared-cacheline counter write. The flag load itself is read-only
    // traffic. The cache still *functions* (tables are served); only the
    // statistics go quiet.
    let _guard = FlagGuard::set(false);
    use cambricon_p::pattern_cache;
    pattern_cache::set_enabled(true);
    pattern_cache::clear();
    let before = pattern_cache::counters();
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE);
    let device = Device::new_default();
    let modulus = random_nat(&mut rng, 1_800);
    for i in 0..5u64 {
        let y = random_nat(&mut rng, 400 + i * 200);
        assert_eq!(device.mul_structural(&modulus, &y), &modulus * &y);
    }
    assert_eq!(
        pattern_cache::counters(),
        before,
        "cache counters must not move while tracing is off"
    );
    // The cache itself kept working: the repeated modulus is resident.
    assert!(pattern_cache::len() >= 1, "lookups must still serve tables");
    pattern_cache::clear();
}

/// Reads the value of `name{labels}` (exact label block match, `""` for
/// none) out of a Prometheus text exposition.
fn prom_value(text: &str, name: &str, labels: &str) -> u64 {
    let needle = format!("{name}{labels} ");
    text.lines()
        .find_map(|l| l.strip_prefix(&needle))
        .unwrap_or_else(|| panic!("missing `{needle}` in:\n{text}"))
        .trim()
        .parse()
        .expect("prometheus counters are integers")
}

/// Extracts `"count": <n>` from the JSON object following the named
/// histogram metric (the hand-rolled exporter keeps one metric per line).
fn json_histogram_count(text: &str, name: &str) -> u64 {
    let line = text
        .lines()
        .find(|l| l.contains(&format!("\"name\": \"{name}\"")))
        .unwrap_or_else(|| panic!("missing metric `{name}` in:\n{text}"));
    let after = line
        .split("\"count\": ")
        .nth(1)
        .unwrap_or_else(|| panic!("no count in `{line}`"));
    after
        .chars()
        .take_while(char::is_ascii_digit)
        .collect::<String>()
        .parse()
        .expect("count is an integer")
}

fn randomized_snapshot(seed: u64) -> MetricsSnapshot {
    let serve = ServeHandle::start(ServeConfig {
        queue_capacity: 4,
        batch_max: 4,
        ..ServeConfig::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let mut tickets = Vec::new();
    for _ in 0..24 {
        let bits = [120u64, 700, 2_200][rng.gen_range(0..3usize)];
        let a = random_nat(&mut rng, bits);
        let job = match rng.gen_range(0..2u32) {
            0 => Job::Mul { a: a.clone(), b: a },
            _ => Job::Sqrt { a },
        };
        // Rejections (queue full) are part of the workload: they feed
        // the rejection counters the exporters must carry faithfully.
        if let Ok(t) = serve.submit(job, JobSpec::default()) {
            tickets.push(t);
        }
    }
    for t in tickets {
        t.wait().expect("accepted jobs report");
    }
    let m = serve.metrics();
    serve.shutdown();
    m
}

#[test]
fn exporters_agree_with_the_raw_snapshot() {
    // Histogram/counter agreement below needs recording on, so hold the
    // flag lock against the disabled-tracing test in this binary.
    let _guard = FlagGuard::set(true);
    let m = randomized_snapshot(0x5EED);
    let prom = m.to_prometheus();
    let json = m.to_json();

    // Prometheus totals match the snapshot counters field for field.
    assert_eq!(prom_value(&prom, "apc_serve_jobs_submitted_total", ""), m.submitted);
    assert_eq!(prom_value(&prom, "apc_serve_jobs_completed_total", ""), m.completed);
    assert_eq!(
        prom_value(&prom, "apc_serve_jobs_rejected_total", "{reason=\"queue_full\"}"),
        m.rejected_full
    );
    assert_eq!(prom_value(&prom, "apc_serve_batches_total", ""), m.batches);
    assert_eq!(
        prom_value(&prom, "apc_serve_batched_jobs_total", ""),
        m.batched_jobs
    );
    let class_total: u64 = (0..)
        .zip(m.cycles_by_class.iter())
        .map(|(i, _)| {
            let name = cambricon_p::stats::OpClass::ALL[i].name();
            prom_value(
                &prom,
                "apc_serve_service_cycles_total",
                &format!("{{class=\"{name}\"}}"),
            )
        })
        .sum();
    assert_eq!(class_total, m.cycles_by_class.iter().sum::<u64>());
    assert_eq!(
        prom_value(&prom, "apc_serve_service_cycles_total", "{class=\"unattributed\"}"),
        m.cycles_unattributed
    );
    assert_eq!(
        prom_value(&prom, "apc_serve_queue_wait_ns_count", ""),
        m.queue_wait_ns.count
    );
    assert_eq!(
        prom_value(&prom, "apc_serve_service_cycles_sum", ""),
        m.service_cycles.sum
    );
    assert_eq!(
        m.service_cycles.sum,
        m.cycles_by_class.iter().sum::<u64>() + m.cycles_unattributed,
        "the histogram and the class counters attribute the same cycles"
    );

    // JSON carries the same totals (same Metric list, other renderer).
    assert!(json.contains(&format!(
        "\"name\": \"apc_serve_jobs_submitted_total\", \"type\": \"counter\", \"value\": {}",
        m.submitted
    )));
    assert!(json.contains(&format!(
        "\"name\": \"apc_serve_jobs_completed_total\", \"type\": \"counter\", \"value\": {}",
        m.completed
    )));
    assert_eq!(json_histogram_count(&json, "apc_serve_submit_ns"), m.submit_ns.count);
    assert_eq!(
        json_histogram_count(&json, "apc_serve_service_cycles"),
        m.service_cycles.count
    );
}
