//! Tier-1 gate: the workspace must be apc-lint clean.
//!
//! This links the lint engine from `crates/xtask` directly (no subprocess,
//! no network), so a plain `cargo test` fails whenever any rule in
//! LINTS.md is violated — the same pass `cargo run -p xtask -- lint`
//! runs by hand.

#[test]
fn workspace_is_apc_lint_clean() {
    let root = xtask::default_workspace_root();
    let violations = xtask::lint_tree(&root).expect("lint engine must run");
    assert!(
        violations.is_empty(),
        "apc-lint found {} violation(s) — run `cargo run -p xtask -- lint`:\n{}",
        violations.len(),
        violations
            .iter()
            .map(|v| v.to_string())
            .collect::<Vec<_>>()
            .join("\n")
    );
}
