//! Tier-1 gate for the pattern-table cache and the sharded admission
//! queue (DESIGN.md §"Admission and caching").
//!
//! Three contracts:
//!
//! 1. **Cache transparency** — repeated-operand workloads must be
//!    bit-identical with the cache on and off, across both kernel
//!    backends: same products, same `DeviceStats` (cycles, stage
//!    attribution, bops, PE passes). The cache is host-side only, like
//!    the Sliced64 backend; it must never leak into the modeled machine.
//! 2. **LRU consistency under concurrent submit** — hammering the cache
//!    from many threads with more distinct operands than its capacity
//!    must keep the resident set bounded, keep the LRU and the entry map
//!    shadowing each other, evict (not wedge), and never corrupt a
//!    result.
//! 3. **MPSC conservation** — with submitters racing a mid-stream
//!    shutdown, every job the sharded queue admitted completes with
//!    exactly one terminal report; no job leaks, none reports twice.

use apc_bignum::Nat;
use apc_serve::{Job, JobOutput, JobSpec, ServeConfig, ServeHandle};
use cambricon_p::pattern_cache;
use cambricon_p::stats::DeviceStats;
use cambricon_p::{Device, KernelBackend};
use rand::{RngCore, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Barrier, Mutex, MutexGuard, PoisonError};
use std::thread;

/// Serializes the tests in this binary that toggle or inspect the
/// process-wide pattern cache, and restores the switch even if an
/// assertion fails.
static CACHE_LOCK: Mutex<()> = Mutex::new(());

struct CacheGuard {
    _lock: MutexGuard<'static, ()>,
}

impl CacheGuard {
    fn set(on: bool) -> CacheGuard {
        let lock = CACHE_LOCK.lock().unwrap_or_else(PoisonError::into_inner);
        // Counters only record while tracing is on; pin it so hit/miss
        // assertions below are meaningful.
        apc_trace::set_enabled(true);
        pattern_cache::set_enabled(on);
        pattern_cache::clear();
        CacheGuard { _lock: lock }
    }
}

impl Drop for CacheGuard {
    fn drop(&mut self) {
        pattern_cache::set_enabled(true);
        pattern_cache::clear();
    }
}

fn random_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63;
    }
    Nat::from_limbs(v)
}

/// A fixed-modulus-style workload: few distinct left operands, many
/// right operands — the shape the cache exists for. Returns everything
/// the device computed, values and accounting alike.
fn repeated_operand_workload(backend: KernelBackend, seed: u64) -> (Vec<Nat>, DeviceStats) {
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let device = Device::new_default().with_kernel_backend(backend);
    let moduli: Vec<Nat> = [900u64, 2_100, 3_300]
        .iter()
        .map(|&bits| random_nat(&mut rng, bits))
        .collect();
    let mut products = Vec::new();
    for round in 0..4u64 {
        for x in &moduli {
            let y = random_nat(&mut rng, 700 + round * 400);
            products.push(device.mul_structural(x, &y));
        }
    }
    (products, device.stats_snapshot())
}

#[test]
fn cache_on_and_off_are_bit_identical_across_backends() {
    for backend in [KernelBackend::Scalar, KernelBackend::Sliced64] {
        let (cached_products, cached_stats, hits) = {
            let _guard = CacheGuard::set(true);
            let before = pattern_cache::counters();
            let (p, s) = repeated_operand_workload(backend, 0xCAFE);
            (p, s, pattern_cache::counters().hits - before.hits)
        };
        let (plain_products, plain_stats) = {
            let _guard = CacheGuard::set(false);
            repeated_operand_workload(backend, 0xCAFE)
        };
        assert_eq!(
            cached_products, plain_products,
            "{backend:?}: products must not depend on the cache"
        );
        assert_eq!(
            cached_stats, plain_stats,
            "{backend:?}: the modeled machine must not see the cache"
        );
        // The workload repeats 3 operands over 12 calls: at least the 9
        // non-cold lookups must have hit, or the cache did nothing.
        assert!(hits >= 9, "{backend:?}: expected >= 9 hits, saw {hits}");
    }
}

#[test]
fn cache_disabled_touches_no_shared_state() {
    let _guard = CacheGuard::set(false);
    let before = pattern_cache::counters();
    let (products, _) = repeated_operand_workload(KernelBackend::Sliced64, 0xD15);
    assert!(!products.is_empty());
    assert_eq!(
        pattern_cache::counters(),
        before,
        "disabled cache must record nothing"
    );
    assert_eq!(pattern_cache::len(), 0, "disabled cache must stay empty");
}

#[test]
fn concurrent_submitters_evict_without_corrupting_the_lru() {
    let _guard = CacheGuard::set(true);
    let before = pattern_cache::counters();
    let threads = 6u64;
    let per_thread = 30u64;
    thread::scope(|s| {
        for t in 0..threads {
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0xE71C + t);
                let device = Device::new_default();
                for _ in 0..per_thread {
                    // Every operand distinct: with capacity 64 (default)
                    // and 180 inserts, replacement must happen.
                    let a = random_nat(&mut rng, 600);
                    let b = random_nat(&mut rng, 500);
                    assert_eq!(device.mul_structural(&a, &b), &a * &b);
                }
            });
        }
    });
    let delta_evictions = pattern_cache::counters().evictions - before.evictions;
    // len() debug-asserts that the LRU and the entry map shadow each
    // other; the bound below is the capacity contract.
    assert!(pattern_cache::len() <= 64, "resident set exceeded capacity");
    assert!(
        delta_evictions > 0,
        "180 distinct operands through a 64-entry cache must evict"
    );
}

#[test]
fn sharded_queue_conserves_every_job_across_shutdown() {
    let serve = ServeHandle::start(ServeConfig {
        queue_capacity: 64,
        workers: 3,
        batch_max: 8,
        ..ServeConfig::default()
    });
    let submitters = 6u64;
    let per_thread = 60u64;
    // Submitters pause at the halfway barrier; the shutdown thread fires
    // there, so roughly half the submissions race the drain.
    let barrier = Arc::new(Barrier::new(submitters as usize + 1));
    let reported = AtomicU64::new(0);
    let admitted_total = AtomicU64::new(0);
    thread::scope(|s| {
        for t in 0..submitters {
            let serve = serve.clone();
            let barrier = Arc::clone(&barrier);
            let reported = &reported;
            let admitted_total = &admitted_total;
            s.spawn(move || {
                let mut rng = rand::rngs::StdRng::seed_from_u64(0x5EED + t);
                let mut tickets = Vec::new();
                for i in 0..per_thread {
                    if i == per_thread / 2 {
                        barrier.wait();
                    }
                    let a = random_nat(&mut rng, 300 + (i % 7) * 150);
                    let b = random_nat(&mut rng, 250);
                    match serve.submit(Job::Mul { a, b }, JobSpec::default()) {
                        Ok(ticket) => tickets.push(ticket),
                        // Backpressure and the shutdown race are the
                        // point of the test, not failures.
                        Err(_) => {}
                    }
                }
                admitted_total.fetch_add(tickets.len() as u64, Ordering::Relaxed);
                for ticket in tickets {
                    let report = ticket
                        .wait()
                        .expect("every admitted job must report, shutdown included");
                    assert!(matches!(report.output, JobOutput::Product(_)));
                    reported.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        {
            let serve = serve.clone();
            let barrier = Arc::clone(&barrier);
            s.spawn(move || {
                barrier.wait();
                serve.shutdown();
            });
        }
    });
    let m = serve.metrics();
    let admitted = admitted_total.load(Ordering::Relaxed);
    assert!(admitted > 0, "some jobs must have been admitted");
    assert_eq!(m.submitted, admitted, "metrics admit count matches tickets");
    assert_eq!(m.completed, admitted, "every admitted job completed");
    assert_eq!(
        reported.load(Ordering::Relaxed),
        admitted,
        "every admitted job delivered exactly one report"
    );
    assert_eq!(serve.queue_depth(), 0, "nothing left staged after drain");
}
