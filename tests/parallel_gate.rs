//! Tier-1 gate: the `parallel` feature must build and its bit-exactness
//! properties must pass.
//!
//! A plain `cargo test` compiles without the feature, so the rayon
//! dispatch paths would otherwise only be exercised when someone remembers
//! to pass `--features parallel`. This gate spawns exactly that: the root
//! property suite (which contains the parallel-vs-sequential equivalence
//! properties) under `--features parallel`, in a separate target directory
//! so the nested cargo does not contend for the outer build lock.
//!
//! Set `APC_SKIP_PARALLEL_GATE=1` to skip (e.g. on machines where the
//! extra feature build is too expensive).

#![cfg(not(feature = "parallel"))]

use std::process::Command;

#[test]
fn parallel_feature_tests_pass() {
    if std::env::var_os("APC_SKIP_PARALLEL_GATE").is_some() {
        eprintln!("APC_SKIP_PARALLEL_GATE set; skipping the parallel feature gate");
        return;
    }
    let root = xtask::default_workspace_root();
    let output = Command::new(env!("CARGO"))
        .args(["test", "-q", "--features", "parallel", "--test", "properties"])
        .current_dir(&root)
        .env("CARGO_TARGET_DIR", root.join("target/parallel-gate"))
        .output()
        .expect("spawn nested cargo test");
    assert!(
        output.status.success(),
        "`cargo test --features parallel --test properties` failed:\n--- stdout\n{}\n--- stderr\n{}",
        String::from_utf8_lossy(&output.stdout),
        String::from_utf8_lossy(&output.stderr),
    );
}
