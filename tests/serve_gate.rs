//! Tier-1 gate for the serving layer (`apc-serve`).
//!
//! Three contracts, each load-bearing for the multi-tenant story:
//!
//! 1. **Bit-exactness** — a randomized job mix spanning several bitwidth
//!    buckets, submitted through the service, must produce results
//!    identical to running the same operators on a private `Device`.
//!    Batching and worker scheduling may reorder *execution*, never
//!    *values*.
//! 2. **Admission control** — a full queue rejects with
//!    [`apc_serve::SubmitError::QueueFull`]: no blocking, no panic, no
//!    silent drop.
//! 3. **Graceful shutdown** — every job accepted before shutdown gets
//!    exactly one terminal report; nothing leaks, nothing double-fires.

use apc_bignum::Nat;
use apc_serve::{Job, JobOutput, JobSpec, ServeConfig, ServeHandle, SubmitError};
use cambricon_p::Device;
use rand::{Rng, RngCore, SeedableRng};

fn random_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63; // pin the width so the job lands in its bucket
    }
    Nat::from_limbs(v)
}

/// Like [`random_nat`] but guaranteed odd (a valid Montgomery modulus).
fn random_odd_nat(rng: &mut rand::rngs::StdRng, bits: u64) -> Nat {
    let limbs = (bits as usize).div_ceil(64).max(1);
    let mut v: Vec<u64> = (0..limbs).map(|_| rng.next_u64()).collect();
    v[0] |= 1;
    if let Some(top) = v.last_mut() {
        *top |= 1 << 63;
    }
    Nat::from_limbs(v)
}

/// The expected output of `job`, computed on a private device.
fn direct(device: &Device, job: &Job) -> JobOutput {
    match job {
        Job::Mul { a, b } => JobOutput::Product(device.mul(a, b)),
        Job::Div { a, b } => {
            let (q, r) = device.divrem(a, b);
            JobOutput::DivRem { quotient: q, remainder: r }
        }
        Job::Sqrt { a } => {
            let (root, rem) = device.sqrt_rem(a);
            JobOutput::SqrtRem { root, remainder: rem }
        }
        Job::ModExp { base, exp, modulus } => {
            JobOutput::PowMod(device.pow_mod(base, exp, modulus))
        }
    }
}

#[test]
fn randomized_job_mix_is_bit_identical_to_direct_execution() {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xC0DE_2022);
    let mut jobs = Vec::new();
    for i in 0..40u64 {
        // Sizes spread across several power-of-two buckets.
        let bits = [96u64, 300, 900, 2500, 7000][rng.gen_range(0usize..5)];
        let job = match i % 4 {
            0 => Job::Mul {
                a: random_nat(&mut rng, bits),
                b: random_nat(&mut rng, bits / 2 + 17),
            },
            1 => Job::Div {
                a: random_nat(&mut rng, bits),
                b: random_nat(&mut rng, bits / 3 + 13),
            },
            2 => Job::Sqrt { a: random_nat(&mut rng, bits) },
            _ => Job::ModExp {
                base: random_nat(&mut rng, bits / 2 + 5),
                exp: Nat::from(rng.gen_range(3u64..40)),
                modulus: random_odd_nat(&mut rng, bits / 2 + 5),
            },
        };
        jobs.push(job);
    }
    let oracle = Device::new_default();
    let expected: Vec<JobOutput> = jobs.iter().map(|j| direct(&oracle, j)).collect();

    let serve = ServeHandle::start(ServeConfig { workers: 3, ..ServeConfig::default() });
    let tickets: Vec<_> = jobs
        .iter()
        .map(|j| serve.submit(j.clone(), JobSpec::default()).expect("capacity available"))
        .collect();
    let mut buckets_seen = std::collections::BTreeSet::new();
    for (ticket, want) in tickets.into_iter().zip(&expected) {
        let report = ticket.wait().expect("every accepted job reports");
        buckets_seen.insert(report.bucket_bits);
        assert_eq!(&report.output, want, "service result diverged from direct device");
    }
    serve.shutdown();
    assert!(
        buckets_seen.len() >= 3,
        "the mix must exercise several buckets, saw {buckets_seen:?}"
    );
    let m = serve.metrics();
    assert_eq!(m.completed, jobs.len() as u64);
}

#[test]
fn full_queue_rejects_with_queue_full_without_blocking_or_panicking() {
    let capacity = 3;
    let serve = ServeHandle::start(ServeConfig {
        queue_capacity: capacity,
        workers: 1,
        batch_max: 1,
        ..ServeConfig::default()
    });
    // Pin the only worker with a genuinely slow multiply...
    let big = Nat::power_of_two(600_000) - Nat::from(3u64);
    let pin = serve
        .submit(Job::Mul { a: big.clone(), b: big }, JobSpec::default())
        .expect("first job admitted");
    // ...then flood far past capacity. Every overflow submit must return
    // promptly with QueueFull (a blocking submit would hang this test).
    let mut accepted = vec![pin];
    let mut overflows = 0u64;
    let small = Nat::power_of_two(128) + Nat::from(7u64);
    for _ in 0..100 {
        match serve.submit(Job::Sqrt { a: small.clone() }, JobSpec::default()) {
            Ok(t) => accepted.push(t),
            Err(SubmitError::QueueFull { capacity: c }) => {
                assert_eq!(c, capacity);
                overflows += 1;
            }
            Err(other) => unreachable!("unexpected rejection under overload: {other}"),
        }
    }
    assert!(overflows >= 90, "flooding a pinned 3-slot queue must overflow");
    for t in accepted {
        t.wait().expect("accepted jobs still complete");
    }
    serve.shutdown();
    let m = serve.metrics();
    assert_eq!(m.rejected_full, overflows);
    assert_eq!(m.completed, m.submitted, "no accepted job may be dropped");
}

#[test]
fn graceful_shutdown_yields_exactly_one_terminal_report_per_job() {
    let serve = ServeHandle::start(ServeConfig {
        workers: 2,
        batch_max: 3,
        ..ServeConfig::default()
    });
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut tickets = Vec::new();
    // A slow head keeps most of the rest queued when shutdown begins.
    let big = Nat::power_of_two(300_000) - Nat::one();
    tickets.push(
        serve
            .submit(Job::Mul { a: big.clone(), b: big }, JobSpec::default())
            .expect("admitted"),
    );
    for _ in 0..25 {
        let bits = rng.gen_range(100u64..4000);
        tickets.push(
            serve
                .submit(Job::Sqrt { a: random_nat(&mut rng, bits) }, JobSpec::default())
                .expect("admitted"),
        );
    }
    let submitted = tickets.len() as u64;
    serve.shutdown(); // blocks until the drain finishes
    assert_eq!(serve.queue_depth(), 0, "shutdown must drain the queue");
    for ticket in tickets {
        // `wait` consumes the only receiver, and the worker sends exactly
        // once — so one report per job is structural; what we verify here
        // is that the report *exists* for every accepted job.
        ticket.wait().expect("drained job must still report");
    }
    let m = serve.metrics();
    assert_eq!(m.submitted, submitted);
    assert_eq!(m.completed, submitted, "drain must complete every accepted job");
    // And the service stays rejecting, not panicking, after the fact.
    let refused = serve.submit(
        Job::Sqrt { a: Nat::from(16u64) },
        JobSpec::default(),
    );
    assert!(matches!(refused, Err(SubmitError::Shutdown)));
}
