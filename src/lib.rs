//! Umbrella crate for the Cambricon-P reproduction workspace.
//!
//! Re-exports the member crates so examples and integration tests can use a
//! single dependency. See the individual crates for documentation:
//!
//! - [`apc_bignum`] — arbitrary-precision natural/integer/float arithmetic
//!   (the GMP-equivalent software substrate).
//! - [`cambricon_p`] — the bitflow architecture model and the MPApca runtime.
//! - [`apc_sim`] — cache-hierarchy and roofline simulation.
//! - [`apc_baselines`] — CPU/GPU/accelerator cost models.
//! - [`apc_apps`] — the four APC applications (Pi, Frac, zkcm, RSA).
//! - [`apc_serve`] — the batching job scheduler serving the device model
//!   to concurrent tenants.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use apc_apps;
pub use apc_baselines;
pub use apc_bignum;
pub use apc_serve;
pub use apc_sim;
pub use cambricon_p;
